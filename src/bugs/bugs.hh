/**
 * @file
 * The paper's bug taxonomy (Sections 4.1-4.6) as a machine-readable
 * catalogue plus injectable buggy program variants.
 *
 * Each bug type is implemented the way the paper describes a
 * programmer actually introducing it — a flipped sign, a misrouted
 * control qubit, a forgotten negation in mirrored code, a wrong
 * classical constant — so the statistical assertions can be shown
 * catching the realistic artifact, not a synthetic corruption.
 */

#ifndef QSA_BUGS_BUGS_HH
#define QSA_BUGS_BUGS_HH

#include <string>
#include <vector>

namespace qsa::bugs
{

/**
 * The six bug types of the paper's taxonomy, plus three
 * statically-visible extension types the qsa::analyze linter catches
 * before any ensemble runs (their BugInfo::lintRule names the rule).
 */
enum class BugType
{
    /** Type 1: incorrect quantum initial values (Section 4.1). */
    WrongInitialValue,

    /** Type 2: incorrect operations/transformations (Section 4.2,
     *  Table 1's flipped rotation decomposition). */
    FlippedRotation,

    /** Type 3: incorrect iterative composition (Section 4.3; loop
     *  bounds, bit shifts, endianness, rotation angles). */
    IterationBug,

    /** Type 4: incorrect recursive composition — misrouted control
     *  qubits in replicated controlled-operation code (Section 4.4). */
    MisroutedControl,

    /** Type 5: incorrect mirroring — broken uncomputation
     *  (Section 4.5). */
    BrokenMirror,

    /** Type 6: incorrect classical input parameters (Section 4.6,
     *  Table 3's wrong modular inverse). */
    WrongClassicalInput,

    /** Extension: a classically-controlled correction conditioned on
     *  a mistyped measurement label nothing writes (the executor
     *  aborts at runtime; the linter catches it statically). */
    ConditionLabelTypo,

    /** Extension: a measured qubit recycled without a reset, so the
     *  reuse computes on a stale collapsed value. */
    MeasuredQubitReuse,

    /** Extension: an ancilla released by reset while still entangled
     *  with live qubits — the reset measures it and collapses them. */
    EntangledReset,
};

/** Catalogue entry describing one bug type. */
struct BugInfo
{
    BugType type;

    /** Short identifier. */
    std::string name;

    /** Paper section introducing it. */
    std::string paperSection;

    /** What the mistake looks like in code. */
    std::string description;

    /** Which assertion kind catches it. */
    std::string caughtBy;

    /**
     * qsa::analyze lint rule id that catches this bug statically,
     * empty when the bug is dynamic-only — visible to statistical
     * assertions but not to any purely static pass (the pin table
     * tests/test_analyze_bugs.cc enforces).
     */
    std::string lintRule;
};

/** The full catalogue, in paper order. */
std::vector<BugInfo> bugCatalog();

/** Catalogue entry lookup. */
const BugInfo &bugInfo(BugType type);

} // namespace qsa::bugs

#endif // QSA_BUGS_BUGS_HH
