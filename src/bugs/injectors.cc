/**
 * @file
 * Buggy-variant implementations.
 */

#include "bugs/injectors.hh"

#include <cmath>

#include "algo/arith.hh"
#include "algo/qft.hh"
#include "bugs/bugs.hh"
#include "common/logging.hh"

namespace qsa::bugs
{

std::string
table1VariantName(Table1Variant variant)
{
    switch (variant) {
      case Table1Variant::CorrectDropA:
        return "correct, operation A unneeded";
      case Table1Variant::CorrectDropC:
        return "correct, operation C unneeded";
      case Table1Variant::IncorrectFlipped:
        return "incorrect, angles flipped";
    }
    panic("unknown Table 1 variant");
}

void
appendCPhaseDecomposed(circuit::Circuit &circ, unsigned ctrl,
                       unsigned tgt, double angle,
                       Table1Variant variant)
{
    const double half = angle / 2.0;
    switch (variant) {
      case Table1Variant::CorrectDropA:
        // Rz(q1,+a/2) C; CNOT; Rz(q1,-a/2) B; CNOT; Rz(q0,+a/2) D.
        circ.phase(tgt, +half);
        circ.cnot(ctrl, tgt);
        circ.phase(tgt, -half);
        circ.cnot(ctrl, tgt);
        circ.phase(ctrl, +half);
        break;
      case Table1Variant::CorrectDropC:
        // CNOT; Rz(q1,-a/2) B; CNOT; Rz(q1,+a/2) A; Rz(q0,+a/2) D.
        circ.cnot(ctrl, tgt);
        circ.phase(tgt, -half);
        circ.cnot(ctrl, tgt);
        circ.phase(tgt, +half);
        circ.phase(ctrl, +half);
        break;
      case Table1Variant::IncorrectFlipped:
        // Rz(q1,-a/2); CNOT; Rz(q1,+a/2); CNOT; Rz(q0,+a/2):
        // a rotation in the wrong direction.
        circ.phase(tgt, -half);
        circ.cnot(ctrl, tgt);
        circ.phase(tgt, +half);
        circ.cnot(ctrl, tgt);
        circ.phase(ctrl, +half);
        break;
    }
}

void
phiAddDecomposed(circuit::Circuit &circ, const circuit::QubitRegister &b,
                 std::uint64_t a, unsigned ctrl, Table1Variant variant)
{
    const unsigned width = b.width();
    for (int b_indx = width - 1; b_indx >= 0; --b_indx) {
        for (int a_indx = b_indx; a_indx >= 0; --a_indx) {
            if ((a >> a_indx) & 1) {
                const double angle =
                    M_PI / std::pow(2.0, b_indx - a_indx);
                appendCPhaseDecomposed(circ, ctrl, b[b_indx], angle,
                                       variant);
            }
        }
    }
}

std::string
iterationBugName(IterationBug bug)
{
    switch (bug) {
      case IterationBug::InnerOffByOne:
        return "inner loop off by one";
      case IterationBug::WrongAngleDenominator:
        return "wrong angle denominator";
      case IterationBug::EndianSwapped:
        return "endian-swapped target index";
    }
    panic("unknown iteration bug");
}

void
phiAddIterationBug(circuit::Circuit &circ,
                   const circuit::QubitRegister &b, std::uint64_t a,
                   const std::vector<unsigned> &controls,
                   IterationBug bug)
{
    const unsigned width = b.width();
    for (int b_indx = width - 1; b_indx >= 0; --b_indx) {
        const int a_lo = bug == IterationBug::InnerOffByOne ? 1 : 0;
        for (int a_indx = b_indx; a_indx >= a_lo; --a_indx) {
            if ((a >> a_indx) & 1) {
                double denom_exp = b_indx - a_indx;
                if (bug == IterationBug::WrongAngleDenominator)
                    denom_exp += 1.0;
                const double angle = M_PI / std::pow(2.0, denom_exp);

                unsigned target = b[b_indx];
                if (bug == IterationBug::EndianSwapped)
                    target = b[width - 1 - b_indx];

                circ.controlledGate(circuit::GateKind::Phase, controls,
                                    target, angle);
            }
        }
    }
}

void
cModMulMisrouted(circuit::Circuit &circ, unsigned ctrl,
                 const circuit::QubitRegister &x,
                 const circuit::QubitRegister &b, std::uint64_t a,
                 std::uint64_t n_mod, unsigned zero_anc)
{
    fatal_if(b.width() != x.width() + 1,
             "helper register must have one more qubit than x");
    (void)ctrl; // the whole point: the control is never routed in

    algo::qft(circ, b);
    for (unsigned i = 0; i < x.width(); ++i) {
        const std::uint64_t addend = (a << i) % n_mod;
        // Correct code passes {ctrl, x[i]}; the replicated-switch bug
        // passes the same qubit twice, which is semantically a single
        // control on x[i] alone.
        std::vector<unsigned> controls{x[i]};
        algo::phiAddModN(circ, b, addend, n_mod, zero_anc, controls);
    }
    algo::iqft(circ, b);
}

void
cUaBrokenMirror(circuit::Circuit &circ, unsigned ctrl,
                const circuit::QubitRegister &x,
                const circuit::QubitRegister &b, std::uint64_t a,
                std::uint64_t a_inv, std::uint64_t n_mod,
                unsigned zero_anc)
{
    algo::cModMul(circ, ctrl, x, b, a, n_mod, zero_anc);
    for (unsigned i = 0; i < x.width(); ++i)
        circ.cswap(ctrl, x[i], b[i]);
    // BUG: forward multiplier with a^-1 instead of the adjoint of the
    // multiplier — b accumulates a^-1 * x instead of being cleared.
    algo::cModMul(circ, ctrl, x, b, a_inv, n_mod, zero_anc);
}

void
phiSubForgotNegate(circuit::Circuit &circ,
                   const circuit::QubitRegister &b, std::uint64_t a,
                   const std::vector<unsigned> &controls)
{
    // Iterates in mirrored order like a correct inverse adder, but
    // the author forgot the minus sign on every angle.
    const unsigned width = b.width();
    for (int b_indx = 0; b_indx < (int)width; ++b_indx) {
        for (int a_indx = 0; a_indx <= b_indx; ++a_indx) {
            if ((a >> a_indx) & 1) {
                const double angle =
                    M_PI / std::pow(2.0, b_indx - a_indx); // no '-'
                circ.controlledGate(circuit::GateKind::Phase, controls,
                                    b[b_indx], angle);
            }
        }
    }
}

namespace
{

/** Conditioned correction reading a label nothing writes. */
StaticBugFixture
conditionLabelTypoFixture()
{
    StaticBugFixture fx;
    fx.lintRule = "cond-unwritten-label";
    for (circuit::Circuit *circ : {&fx.buggy, &fx.clean}) {
        const bool buggy = circ == &fx.buggy;
        const auto q = circ->addRegister("q", 2);
        circ->h(q[0]);
        circ->measureQubits({q[0]}, "m");
        circ->x(q[1]);
        // BUG: "mm" instead of "m" — the executor aborts here.
        circ->conditionLast(buggy ? "mm" : "m", 1);
        circ->measureQubits({q[1]}, "out");
    }
    fx.defectInstruction = 2; // the conditioned X
    return fx;
}

/** Measured qubit recycled without the reset. */
StaticBugFixture
measuredQubitReuseFixture()
{
    StaticBugFixture fx;
    fx.lintRule = "measure-without-reset";
    for (circuit::Circuit *circ : {&fx.buggy, &fx.clean}) {
        const bool buggy = circ == &fx.buggy;
        const auto q = circ->addRegister("q", 2);
        circ->h(q[0]);
        circ->measureQubits({q[0]}, "m");
        // BUG: the recycling prepZ is missing — the H below acts on
        // the stale collapsed value, not a fresh |0>.
        if (!buggy)
            circ->prepZ(q[0], 0);
        circ->h(q[0]);
        circ->cnot(q[0], q[1]);
        circ->measureQubits({q[0], q[1]}, "out");
    }
    fx.defectInstruction = 2; // the reuse (H on the stale qubit)
    return fx;
}

/** Ancilla released while still entangled with live qubits. */
StaticBugFixture
entangledResetFixture()
{
    StaticBugFixture fx;
    fx.lintRule = "reset-entangled";
    for (circuit::Circuit *circ : {&fx.buggy, &fx.clean}) {
        const bool buggy = circ == &fx.buggy;
        const auto q = circ->addRegister("q", 2);
        const auto anc = circ->addRegister("anc", 1);
        circ->h(q[0]);
        circ->cnot(q[0], anc[0]); // compute into the ancilla
        circ->cz(anc[0], q[1]);   // use it
        // BUG: the uncompute CNOT is missing — the release below
        // measures the ancilla and collapses q.
        if (!buggy)
            circ->cnot(q[0], anc[0]);
        circ->prepZ(anc[0], 0);
        circ->measureQubits({q[0], q[1]}, "out");
    }
    fx.defectInstruction = 3; // the release of the entangled ancilla
    return fx;
}

} // anonymous namespace

StaticBugFixture
staticBugFixture(BugType type)
{
    switch (type) {
      case BugType::ConditionLabelTypo:
        return conditionLabelTypoFixture();
      case BugType::MeasuredQubitReuse:
        return measuredQubitReuseFixture();
      case BugType::EntangledReset:
        return entangledResetFixture();
      default:
        fatal("bug type '", bugInfo(type).name,
              "' is dynamic-only: it has no static fixture");
    }
}

} // namespace qsa::bugs
