/**
 * @file
 * Bug catalogue data.
 */

#include "bugs/bugs.hh"

#include "common/logging.hh"

namespace qsa::bugs
{

std::vector<BugInfo>
bugCatalog()
{
    return {
        {BugType::WrongInitialValue, "wrong-initial-value", "4.1",
         "lower target register loaded with 0 instead of 1 (or the "
         "superposition-creating Hadamards omitted)",
         "classical / superposition precondition assertions", ""},
        {BugType::FlippedRotation, "flipped-rotation", "4.2 / Table 1",
         "controlled-rotation decomposition with the +/- angle halves "
         "swapped: a rotation in the wrong direction",
         "classical assertion on an adder unit-test output", ""},
        {BugType::IterationBug, "iteration-bug", "4.3",
         "two-dimensional adder loop with an off-by-one bound, a "
         "wrong rotation-angle denominator, or swapped endianness",
         "classical assertions on iteration inputs/outputs", ""},
        {BugType::MisroutedControl, "misrouted-control", "4.4",
         "replicated multi-control code passing ctrl1 twice instead "
         "of ctrl0, ctrl1 (Listing 2, line 15)",
         "entanglement assertion between control and target", ""},
        {BugType::BrokenMirror, "broken-mirror", "4.5",
         "uncompute path missing the angle negation / operation "
         "reversal, leaving ancilla qubits entangled",
         "product-state assertion after uncomputation", ""},
        {BugType::WrongClassicalInput, "wrong-classical-input",
         "4.6 / Table 3",
         "supplying 12 instead of 13 as the modular inverse of 7 "
         "mod 15",
         "classical postcondition assertion on deallocated ancillas",
         ""},
        {BugType::ConditionLabelTypo, "condition-label-typo",
         "extension",
         "classically-controlled correction conditioned on a "
         "mistyped measurement label that nothing writes",
         "static lint; at runtime the executor aborts at the "
         "conditioned instruction",
         "cond-unwritten-label"},
        {BugType::MeasuredQubitReuse, "measured-qubit-reuse",
         "extension",
         "measured qubit recycled without a reset, computing on a "
         "stale collapsed value",
         "static lint; dynamically a classical assertion on the "
         "recycled qubit's expected fresh value",
         "measure-without-reset"},
        {BugType::EntangledReset, "entangled-reset", "extension",
         "ancilla released by reset while still entangled with live "
         "qubits, collapsing them",
         "static lint; dynamically a product-state assertion before "
         "the release",
         "reset-entangled"},
    };
}

const BugInfo &
bugInfo(BugType type)
{
    static const std::vector<BugInfo> catalog = bugCatalog();
    for (const auto &info : catalog) {
        if (info.type == type)
            return info;
    }
    panic("unknown bug type");
}

} // namespace qsa::bugs
