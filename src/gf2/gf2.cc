/**
 * @file
 * GF(2^k) implementation.
 */

#include "gf2/gf2.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::gf2
{

namespace
{

/** Carry-less multiplication of two polynomials over GF(2). */
std::uint64_t
clmul(std::uint32_t a, std::uint32_t b)
{
    std::uint64_t acc = 0;
    std::uint64_t shifted = a;
    while (b) {
        if (b & 1)
            acc ^= shifted;
        shifted <<= 1;
        b >>= 1;
    }
    return acc;
}

} // anonymous namespace

bool
Field::isIrreducible(std::uint32_t poly, unsigned degree)
{
    if (degree == 0 || getBit(poly, degree) == 0)
        return false;

    // Trial division by every polynomial of degree 1..degree/2.
    for (std::uint32_t d = 2; d < (1u << (degree / 2 + 1)); ++d) {
        if (d < 2)
            continue;
        const unsigned dd = bitWidth(d) - 1;
        if (dd == 0 || dd > degree / 2)
            continue;

        // Polynomial long division poly mod d.
        std::uint64_t rem = poly;
        while (bitWidth(rem) - 1 >= dd && rem != 0) {
            const unsigned shift = (bitWidth(rem) - 1) - dd;
            rem ^= (std::uint64_t)d << shift;
        }
        if (rem == 0)
            return false;
    }
    return true;
}

Field::Field(unsigned degree, std::uint32_t modulus) : k(degree)
{
    fatal_if(degree == 0 || degree > 16,
             "GF(2^k) supported for 1 <= k <= 16, got k = ", degree);

    if (modulus == 0) {
        // Default: the numerically smallest irreducible polynomial of
        // the requested degree (deterministic and cheap at k <= 16).
        for (std::uint32_t cand = (1u << degree) + 1;
             cand < (2u << degree); cand += 2) {
            if (isIrreducible(cand, degree)) {
                modulus = cand;
                break;
            }
        }
        panic_if(modulus == 0, "no irreducible polynomial found");
    }

    mod = modulus;
    fatal_if(bitWidth(mod) != k + 1, "modulus degree must equal ", k);
    fatal_if(!isIrreducible(mod, k), "modulus polynomial ", mod,
             " is reducible");
}

std::uint32_t
Field::add(std::uint32_t a, std::uint32_t b) const
{
    return (a ^ b) & lowMask(k);
}

std::uint32_t
Field::reduce(std::uint64_t value) const
{
    // Reduce from the top: degree of the product is at most 2k - 2.
    for (int bit = 2 * (int)k - 2; bit >= (int)k; --bit) {
        if (value & (1ull << bit))
            value ^= (std::uint64_t)mod << (bit - k);
    }
    return static_cast<std::uint32_t>(value & lowMask(k));
}

std::uint32_t
Field::mul(std::uint32_t a, std::uint32_t b) const
{
    panic_if(a >= order() || b >= order(), "element out of field");
    return reduce(clmul(a, b));
}

std::uint32_t
Field::square(std::uint32_t a) const
{
    return mul(a, a);
}

std::uint32_t
Field::pow(std::uint32_t a, std::uint64_t e) const
{
    std::uint32_t result = 1;
    std::uint32_t base = a;
    while (e) {
        if (e & 1)
            result = mul(result, base);
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

std::uint32_t
Field::inverse(std::uint32_t a) const
{
    fatal_if(a == 0, "zero has no multiplicative inverse");
    return pow(a, order() - 2);
}

std::uint32_t
Field::sqrt(std::uint32_t a) const
{
    // Squaring is the Frobenius map x -> x^2, a field automorphism of
    // GF(2^k); its inverse is x -> x^(2^(k-1)).
    return pow(a, 1ull << (k - 1));
}

std::vector<std::uint32_t>
Field::squaringMatrixRows() const
{
    // Column j of S is square(x^j); convert to row masks.
    std::vector<std::uint32_t> rows(k, 0);
    for (unsigned j = 0; j < k; ++j) {
        const std::uint32_t col = square(1u << j);
        for (unsigned i = 0; i < k; ++i) {
            if (getBit(col, i))
                rows[i] |= 1u << j;
        }
    }
    return rows;
}

} // namespace qsa::gf2
