/**
 * @file
 * Arithmetic in the binary Galois fields GF(2^k).
 *
 * The paper's Grover case study searches for "the square root of a
 * number in a Galois field" (Section 5.1.2). This module provides the
 * classical arithmetic — carry-less multiplication modulo an
 * irreducible polynomial — and, crucially for the oracle construction,
 * the fact that squaring in GF(2^k) is *linear* over GF(2) (the
 * Frobenius endomorphism), so the reversible squaring circuit is a pure
 * CNOT network derived from a bit matrix.
 */

#ifndef QSA_GF2_GF2_HH
#define QSA_GF2_GF2_HH

#include <cstdint>
#include <vector>

namespace qsa::gf2
{

/**
 * The field GF(2^k) represented by polynomials over GF(2) modulo an
 * irreducible polynomial. Elements are k-bit integers whose bit i is
 * the coefficient of x^i.
 */
class Field
{
  public:
    /**
     * @param degree field extension degree k (1 <= k <= 16)
     * @param modulus irreducible polynomial of degree k, bit k set
     *        (e.g. 0b10011 = x^4 + x + 1 for GF(16)); pass 0 to use a
     *        built-in irreducible polynomial for the degree
     */
    explicit Field(unsigned degree, std::uint32_t modulus = 0);

    /** Extension degree k. */
    unsigned degree() const { return k; }

    /** Field size 2^k. */
    std::uint32_t order() const { return 1u << k; }

    /** The modulus polynomial. */
    std::uint32_t modulus() const { return mod; }

    /** Field addition (XOR). */
    std::uint32_t add(std::uint32_t a, std::uint32_t b) const;

    /** Field multiplication (carry-less product reduced mod modulus). */
    std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;

    /** Squaring (Frobenius endomorphism; linear over GF(2)). */
    std::uint32_t square(std::uint32_t a) const;

    /** Exponentiation by squaring. */
    std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

    /** Multiplicative inverse of a != 0 (a^(2^k - 2)). */
    std::uint32_t inverse(std::uint32_t a) const;

    /**
     * Unique square root: squaring is a bijection in GF(2^k), and
     * sqrt(a) = a^(2^(k-1)).
     */
    std::uint32_t sqrt(std::uint32_t a) const;

    /**
     * The k x k GF(2) matrix S of the squaring map: column j holds
     * square(x^j), so square(a) = S a over GF(2). Row i is returned as
     * a bit mask over the input bits — exactly the CNOT fan-in list
     * the reversible oracle needs.
     */
    std::vector<std::uint32_t> squaringMatrixRows() const;

    /** True when the polynomial is irreducible over GF(2). */
    static bool isIrreducible(std::uint32_t poly, unsigned degree);

  private:
    unsigned k;
    std::uint32_t mod;

    /** Reduce a carry-less product modulo the field polynomial. */
    std::uint32_t reduce(std::uint64_t value) const;
};

} // namespace qsa::gf2

#endif // QSA_GF2_GF2_HH
