/**
 * @file
 * Histogram helper implementations.
 */

#include "stats/histogram.hh"

#include "common/logging.hh"

namespace qsa::stats
{

std::map<std::uint64_t, std::uint64_t>
countOutcomes(const std::vector<std::uint64_t> &outcomes)
{
    std::map<std::uint64_t, std::uint64_t> counts;
    for (std::uint64_t v : outcomes)
        ++counts[v];
    return counts;
}

std::vector<double>
denseCounts(const std::vector<std::uint64_t> &outcomes,
            std::uint64_t domain)
{
    std::vector<double> counts(domain, 0.0);
    for (std::uint64_t v : outcomes) {
        panic_if(v >= domain, "outcome ", v, " outside domain ", domain);
        counts[v] += 1.0;
    }
    return counts;
}

std::vector<double>
toFrequencies(const std::vector<double> &counts)
{
    double total = 0.0;
    for (double c : counts)
        total += c;

    std::vector<double> freq(counts.size(), 0.0);
    if (total <= 0.0)
        return freq;
    for (std::size_t i = 0; i < counts.size(); ++i)
        freq[i] = counts[i] / total;
    return freq;
}

} // namespace qsa::stats
