/**
 * @file
 * Lanczos log-gamma and incomplete gamma implementations following the
 * classical series / continued-fraction split (Numerical Recipes ch. 6).
 */

#include "stats/specfun.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace qsa::stats
{

double
lnGamma(double x)
{
    panic_if(x <= 0.0, "lnGamma requires x > 0, got ", x);

    // Lanczos coefficients (g = 5, n = 6), as tabulated in NR.
    static const double cof[6] = {
        76.18009172947146, -86.50532032941677, 24.01409824083091,
        -1.231739572450155, 0.1208650973866179e-2, -0.5395239384953e-5,
    };

    double y = x;
    double tmp = x + 5.5;
    tmp -= (x + 0.5) * std::log(tmp);
    double ser = 1.000000000190015;
    for (double c : cof)
        ser += c / ++y;
    return -tmp + std::log(2.5066282746310005 * ser / x);
}

namespace
{

/** Series representation of P(a, x), valid (fast) for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    const int max_iter = 500;
    const double eps = std::numeric_limits<double>::epsilon();

    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < max_iter; ++n) {
        ++ap;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * eps)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - lnGamma(a));
}

/** Continued-fraction representation of Q(a, x), for x >= a + 1. */
double
gammaQContinuedFraction(double a, double x)
{
    const int max_iter = 500;
    const double eps = std::numeric_limits<double>::epsilon();
    const double fpmin = std::numeric_limits<double>::min() / eps;

    // Modified Lentz's method.
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= max_iter; ++i) {
        const double an = -1.0 * i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return std::exp(-x + a * std::log(x) - lnGamma(a)) * h;
}

} // anonymous namespace

double
gammaP(double a, double x)
{
    panic_if(a <= 0.0, "gammaP requires a > 0, got ", a);
    panic_if(x < 0.0, "gammaP requires x >= 0, got ", x);

    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
gammaQ(double a, double x)
{
    panic_if(a <= 0.0, "gammaQ requires a > 0, got ", a);
    panic_if(x < 0.0, "gammaQ requires x >= 0, got ", x);

    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

double
errorFunction(double x)
{
    const double p = gammaP(0.5, x * x);
    return x >= 0.0 ? p : -p;
}

double
errorFunctionC(double x)
{
    return x >= 0.0 ? gammaQ(0.5, x * x) : 1.0 + gammaP(0.5, x * x);
}

} // namespace qsa::stats
