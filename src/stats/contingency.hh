/**
 * @file
 * Contingency-table analysis for entanglement and product-state
 * assertions.
 *
 * Section 4.4 of the paper: measurements of two quantum variables are
 * cross-tabulated; a chi-square independence test with a small p-value
 * rejects independence, i.e. the variables were correlated and hence
 * entangled. Section 4.5 uses the same analysis with the opposite
 * expectation (a large p-value is consistent with a product state).
 *
 * The paper's quoted 2x2 p-values (0.0005 for a perfectly correlated
 * table at ensemble size 16) correspond to the Yates continuity
 * correction, which this module applies to 2x2 tables by default.
 */

#ifndef QSA_STATS_CONTINGENCY_HH
#define QSA_STATS_CONTINGENCY_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stats/chi2.hh"

namespace qsa::stats
{

/**
 * A two-way table of outcome counts. Row/column categories are the
 * observed values of the two measured quantum variables; the builder
 * compacts the (possibly huge) value domains down to the values that
 * actually occurred, as the paper's tool does when it "maps the
 * measurement results into columns and rows of a contingency table
 * automatically".
 */
class ContingencyTable
{
  public:
    /** Build from paired observations (value_a, value_b). */
    static ContingencyTable
    fromPairs(const std::vector<std::pair<std::uint64_t,
                                          std::uint64_t>> &pairs);

    /**
     * Build from a dense joint-count matrix whose rows/cols are labelled
     * with explicit category values.
     */
    static ContingencyTable
    fromCounts(const std::vector<std::uint64_t> &row_labels,
               const std::vector<std::uint64_t> &col_labels,
               const std::vector<std::vector<double>> &counts);

    /** Number of row categories. */
    std::size_t numRows() const { return rowLabels.size(); }

    /** Number of column categories. */
    std::size_t numCols() const { return colLabels.size(); }

    /** Total observation count. */
    double total() const;

    /** Count in cell (r, c) by index. */
    double at(std::size_t r, std::size_t c) const;

    /** Row category labels (sorted, as observed). */
    const std::vector<std::uint64_t> &rows() const { return rowLabels; }

    /** Column category labels (sorted, as observed). */
    const std::vector<std::uint64_t> &cols() const { return colLabels; }

  private:
    std::vector<std::uint64_t> rowLabels;
    std::vector<std::uint64_t> colLabels;
    std::vector<std::vector<double>> cells;
};

/** Result of a chi-square independence test on a contingency table. */
struct IndependenceResult
{
    /** Chi-square statistic (Yates-corrected when applied). */
    double statistic = 0.0;

    /** Degrees of freedom (nr - 1)(nc - 1) over non-empty rows/cols. */
    double df = 0.0;

    /** p-value; <= alpha rejects independence (=> entangled). */
    double pValue = 1.0;

    /** Cramér's V effect size in [0, 1]. */
    double cramersV = 0.0;

    /** Pearson contingency coefficient C in [0, 1). */
    double contingencyC = 0.0;

    /** Whether the Yates continuity correction was applied. */
    bool yatesApplied = false;

    /**
     * Degenerate tables (a single non-empty row or column) carry no
     * dependence information; df == 0 and pValue == 1 in that case.
     */
    bool degenerate = false;
};

/**
 * Pearson chi-square test of independence.
 *
 * @param table the contingency table
 * @param yates_for_2x2 apply the continuity correction when the
 *        non-degenerate table is exactly 2x2 (the paper's configuration)
 */
IndependenceResult independenceTest(const ContingencyTable &table,
                                    bool yates_for_2x2 = true);

/**
 * G-test of independence (log-likelihood ratio), same table handling;
 * used by the statistics ablation bench.
 */
IndependenceResult independenceGTest(const ContingencyTable &table);

} // namespace qsa::stats

#endif // QSA_STATS_CONTINGENCY_HH
