/**
 * @file
 * Chi-square distribution functions and goodness-of-fit tests.
 *
 * These are the statistical primitives behind the paper's
 * assert_classical and assert_superposition checks (Sections 3.1 and
 * 4.1): an ensemble of measurement outcomes is binned and compared
 * against the hypothesised distribution with a chi-square test; a small
 * p-value rejects the hypothesis and fires the assertion.
 */

#ifndef QSA_STATS_CHI2_HH
#define QSA_STATS_CHI2_HH

#include <cstdint>
#include <vector>

namespace qsa::stats
{

/** Chi-square cumulative distribution function with df degrees. */
double chiSquareCdf(double x, double df);

/** Chi-square survival function (p-value of statistic x). */
double chiSquareSf(double x, double df);

/**
 * Chi-square quantile: smallest x with CDF(x) >= p (bisection; used by
 * the statistical-power ablation to derive rejection thresholds).
 */
double chiSquareQuantile(double p, double df);

/**
 * Result of a chi-square test.
 *
 * When the hypothesised distribution puts zero probability on a bin
 * that was nevertheless observed, the statistic is infinite and the
 * p-value is exactly 0 (the convention NR's chsone enforces by erroring
 * out; here it is a well-defined rejection, which is precisely the case
 * "measured a value the classical assertion forbids").
 */
struct Chi2Result
{
    /** Chi-square statistic (may be +infinity, see above). */
    double statistic = 0.0;

    /** Degrees of freedom used for the p-value. */
    double df = 0.0;

    /** Survival-function p-value in [0, 1]. */
    double pValue = 1.0;

    /** Number of bins that actually entered the statistic. */
    std::size_t usedBins = 0;

    /** True when any observed count fell in a zero-expected bin. */
    bool impossibleOutcome = false;
};

/**
 * One-sample chi-square goodness-of-fit test (NR chsone semantics).
 *
 * Bins with expected == 0 and observed == 0 are skipped. Bins with
 * expected == 0 but observed > 0 make the test reject with p = 0.
 *
 * @param observed observed counts per bin
 * @param expected expected counts per bin (same total as observed for a
 *        meaningful test; not enforced)
 * @param constraints number of model constraints subtracted from the
 *        degrees of freedom (1 when expected was normalised to the
 *        sample size, per NR)
 */
Chi2Result chiSquareGof(const std::vector<double> &observed,
                        const std::vector<double> &expected,
                        int constraints = 1);

/**
 * Two-sample chi-square test for identical parent distributions (NR
 * chstwo): bins empty in both samples are skipped. Unequal sample
 * totals R = sum(sample1), S = sum(sample2) are handled with the NR
 * §14.3 scaling (sqrt(S/R) r - sqrt(R/S) s)^2 / (r + s); when R == S
 * this reduces bit-identically to the equal-N formula.
 *
 * `constraints` follows NR's knstrn: pass 1 (the default) when the
 * two totals are constrained to agree by construction, 0 when the
 * samples were sized independently (one more degree of freedom).
 */
Chi2Result chiSquareTwoSample(const std::vector<double> &sample1,
                              const std::vector<double> &sample2,
                              int constraints = 1);

/**
 * G-test (log-likelihood ratio) alternative to chiSquareGof with the
 * same bin conventions; used by the statistics ablation bench.
 */
Chi2Result gTestGof(const std::vector<double> &observed,
                    const std::vector<double> &expected,
                    int constraints = 1);

/** Expected counts for a uniform distribution over num_bins bins. */
std::vector<double> uniformExpected(std::size_t num_bins, double total);

/**
 * Expected counts for a point-mass (classical value) distribution.
 *
 * @param num_bins domain size
 * @param value bin carrying all the mass
 * @param total ensemble size
 */
std::vector<double> pointMassExpected(std::size_t num_bins,
                                      std::uint64_t value, double total);

} // namespace qsa::stats

#endif // QSA_STATS_CHI2_HH
