/**
 * @file
 * Special functions needed by the chi-square machinery.
 *
 * The paper computes p-values with Numerical Recipes-style routines
 * [42]; this module provides the same building blocks implemented from
 * scratch: log-gamma and the regularized incomplete gamma functions
 * P(a, x) and Q(a, x). The chi-square survival function is
 * Q(df / 2, x / 2).
 */

#ifndef QSA_STATS_SPECFUN_HH
#define QSA_STATS_SPECFUN_HH

namespace qsa::stats
{

/**
 * Natural log of the gamma function for x > 0 (Lanczos approximation,
 * |relative error| < 2e-10 over the domain used here).
 */
double lnGamma(double x);

/**
 * Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
 * Series expansion for x < a + 1, continued fraction otherwise.
 */
double gammaP(double a, double x);

/** Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x). */
double gammaQ(double a, double x);

/** Error function computed via gammaP(1/2, x^2). */
double errorFunction(double x);

/** Complementary error function. */
double errorFunctionC(double x);

} // namespace qsa::stats

#endif // QSA_STATS_SPECFUN_HH
