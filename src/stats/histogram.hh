/**
 * @file
 * Histogram helpers to turn measurement ensembles into binned counts.
 */

#ifndef QSA_STATS_HISTOGRAM_HH
#define QSA_STATS_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <vector>

namespace qsa::stats
{

/** Sparse counts of each distinct outcome. */
std::map<std::uint64_t, std::uint64_t>
countOutcomes(const std::vector<std::uint64_t> &outcomes);

/**
 * Dense per-value counts over the domain [0, domain).
 *
 * @param outcomes observed values; each must be < domain
 * @param domain domain size (2^width for a width-qubit register)
 */
std::vector<double> denseCounts(const std::vector<std::uint64_t> &outcomes,
                                std::uint64_t domain);

/** Normalise counts to frequencies (empty input yields empty output). */
std::vector<double> toFrequencies(const std::vector<double> &counts);

} // namespace qsa::stats

#endif // QSA_STATS_HISTOGRAM_HH
