/**
 * @file
 * Contingency-table construction and independence testing (NR cntab
 * with the Yates continuity correction for 2x2 tables).
 */

#include "stats/contingency.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"

namespace qsa::stats
{

ContingencyTable
ContingencyTable::fromPairs(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &pairs)
{
    std::set<std::uint64_t> row_set, col_set;
    for (const auto &[a, b] : pairs) {
        row_set.insert(a);
        col_set.insert(b);
    }

    ContingencyTable t;
    t.rowLabels.assign(row_set.begin(), row_set.end());
    t.colLabels.assign(col_set.begin(), col_set.end());
    t.cells.assign(t.rowLabels.size(),
                   std::vector<double>(t.colLabels.size(), 0.0));

    auto index_of = [](const std::vector<std::uint64_t> &labels,
                       std::uint64_t v) {
        return std::lower_bound(labels.begin(), labels.end(), v) -
               labels.begin();
    };
    for (const auto &[a, b] : pairs)
        t.cells[index_of(t.rowLabels, a)][index_of(t.colLabels, b)] += 1.0;
    return t;
}

ContingencyTable
ContingencyTable::fromCounts(const std::vector<std::uint64_t> &row_labels,
                             const std::vector<std::uint64_t> &col_labels,
                             const std::vector<std::vector<double>> &counts)
{
    panic_if(counts.size() != row_labels.size(),
             "row label/count mismatch");
    for (const auto &row : counts)
        panic_if(row.size() != col_labels.size(),
                 "column label/count mismatch");

    ContingencyTable t;
    t.rowLabels = row_labels;
    t.colLabels = col_labels;
    t.cells = counts;
    return t;
}

double
ContingencyTable::total() const
{
    double n = 0.0;
    for (const auto &row : cells)
        for (double c : row)
            n += c;
    return n;
}

double
ContingencyTable::at(std::size_t r, std::size_t c) const
{
    panic_if(r >= numRows() || c >= numCols(),
             "contingency cell out of range");
    return cells[r][c];
}

namespace
{

/**
 * Core of both independence tests. Empty rows/columns are excluded from
 * the degrees of freedom, following NR cntab.
 */
template <typename CellTerm>
IndependenceResult
independenceCore(const ContingencyTable &table, bool yates_for_2x2,
                 CellTerm term)
{
    const std::size_t nr = table.numRows();
    const std::size_t nc = table.numCols();

    std::vector<double> row_sum(nr, 0.0), col_sum(nc, 0.0);
    double n = 0.0;
    for (std::size_t r = 0; r < nr; ++r) {
        for (std::size_t c = 0; c < nc; ++c) {
            const double v = table.at(r, c);
            row_sum[r] += v;
            col_sum[c] += v;
            n += v;
        }
    }

    IndependenceResult res;
    panic_if(n <= 0.0, "independence test on an empty table");

    const auto nnr = std::count_if(row_sum.begin(), row_sum.end(),
                                   [](double s) { return s > 0.0; });
    const auto nnc = std::count_if(col_sum.begin(), col_sum.end(),
                                   [](double s) { return s > 0.0; });

    if (nnr <= 1 || nnc <= 1) {
        // One of the variables is constant: no dependence information.
        res.degenerate = true;
        res.df = 0.0;
        res.pValue = 1.0;
        return res;
    }

    res.df = static_cast<double>((nnr - 1) * (nnc - 1));
    const bool yates = yates_for_2x2 && nnr == 2 && nnc == 2;
    res.yatesApplied = yates;

    double stat = 0.0;
    for (std::size_t r = 0; r < nr; ++r) {
        if (row_sum[r] == 0.0)
            continue;
        for (std::size_t c = 0; c < nc; ++c) {
            if (col_sum[c] == 0.0)
                continue;
            const double expected = row_sum[r] * col_sum[c] / n;
            stat += term(table.at(r, c), expected, yates);
        }
    }

    res.statistic = stat;
    res.pValue = chiSquareSf(stat, res.df);
    res.cramersV = std::sqrt(
        stat / (n * std::min<double>(nnr - 1, nnc - 1)));
    res.cramersV = std::min(res.cramersV, 1.0);
    res.contingencyC = std::sqrt(stat / (stat + n));
    return res;
}

} // anonymous namespace

IndependenceResult
independenceTest(const ContingencyTable &table, bool yates_for_2x2)
{
    return independenceCore(
        table, yates_for_2x2,
        [](double o, double e, bool yates) {
            double d = std::fabs(o - e);
            if (yates)
                d = std::max(0.0, d - 0.5);
            return d * d / e;
        });
}

IndependenceResult
independenceGTest(const ContingencyTable &table)
{
    return independenceCore(
        table, false,
        [](double o, double e, bool) {
            if (o == 0.0)
                return 0.0;
            return 2.0 * o * std::log(o / e);
        });
}

} // namespace qsa::stats
