/**
 * @file
 * Chi-square distribution and goodness-of-fit implementations.
 */

#include "stats/chi2.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "stats/specfun.hh"

namespace qsa::stats
{

double
chiSquareCdf(double x, double df)
{
    panic_if(df <= 0.0, "chiSquareCdf requires df > 0, got ", df);
    if (x <= 0.0)
        return 0.0;
    return gammaP(df / 2.0, x / 2.0);
}

double
chiSquareSf(double x, double df)
{
    panic_if(df <= 0.0, "chiSquareSf requires df > 0, got ", df);
    if (x <= 0.0)
        return 1.0;
    if (std::isinf(x))
        return 0.0;
    return gammaQ(df / 2.0, x / 2.0);
}

double
chiSquareQuantile(double p, double df)
{
    panic_if(p < 0.0 || p >= 1.0,
             "chiSquareQuantile requires p in [0, 1), got ", p);
    if (p == 0.0)
        return 0.0;

    // Bracket then bisect; the CDF is monotone.
    double lo = 0.0;
    double hi = df + 10.0;
    while (chiSquareCdf(hi, df) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (chiSquareCdf(mid, df) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + hi))
            break;
    }
    return 0.5 * (lo + hi);
}

namespace
{

/**
 * Shared skeleton for the one-sample tests: accumulates a per-bin
 * statistic with the zero-expected-bin conventions documented in the
 * header.
 */
template <typename BinTerm>
Chi2Result
binnedTest(const std::vector<double> &observed,
           const std::vector<double> &expected, int constraints,
           BinTerm term)
{
    panic_if(observed.size() != expected.size(),
             "bin count mismatch: ", observed.size(), " observed vs ",
             expected.size(), " expected");

    Chi2Result res;
    double stat = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double o = observed[i];
        const double e = expected[i];
        panic_if(o < 0.0 || e < 0.0, "negative bin count");
        if (e == 0.0 && o == 0.0)
            continue;
        if (e == 0.0) {
            res.impossibleOutcome = true;
            continue;
        }
        stat += term(o, e);
        ++used;
    }

    res.usedBins = used;
    res.df = static_cast<double>(used) - constraints;

    if (res.impossibleOutcome) {
        res.statistic = std::numeric_limits<double>::infinity();
        res.pValue = 0.0;
        return res;
    }

    res.statistic = stat;
    if (res.df <= 0.0) {
        // Degenerate test (e.g. point-mass hypothesis with every
        // observation on the expected value): nothing left to reject.
        res.df = 0.0;
        res.pValue = stat <= 1e-9 ? 1.0 : 0.0;
        return res;
    }

    res.pValue = chiSquareSf(stat, res.df);
    return res;
}

} // anonymous namespace

Chi2Result
chiSquareGof(const std::vector<double> &observed,
             const std::vector<double> &expected, int constraints)
{
    return binnedTest(observed, expected, constraints,
                      [](double o, double e) {
                          const double d = o - e;
                          return d * d / e;
                      });
}

Chi2Result
gTestGof(const std::vector<double> &observed,
         const std::vector<double> &expected, int constraints)
{
    return binnedTest(observed, expected, constraints,
                      [](double o, double e) {
                          if (o == 0.0)
                              return 0.0;
                          return 2.0 * o * std::log(o / e);
                      });
}

Chi2Result
chiSquareTwoSample(const std::vector<double> &sample1,
                   const std::vector<double> &sample2, int constraints)
{
    panic_if(sample1.size() != sample2.size(),
             "bin count mismatch between samples");

    double total_r = 0.0;
    double total_s = 0.0;
    for (std::size_t i = 0; i < sample1.size(); ++i) {
        panic_if(sample1[i] < 0.0 || sample2[i] < 0.0,
                 "negative bin count");
        total_r += sample1[i];
        total_s += sample2[i];
    }
    panic_if(total_r == 0.0 || total_s == 0.0,
             "two-sample test needs a positive total in each sample");

    // NR §14.3 chstwo with unequal sample sizes: each bin contributes
    // (sqrt(S/R) r - sqrt(R/S) s)^2 / (r + s). When R == S both
    // ratios are exactly 1.0 and sqrt(1.0) is exact, so equal-N
    // results stay bit-identical to the unscaled formula.
    const double scale_r = std::sqrt(total_s / total_r);
    const double scale_s = std::sqrt(total_r / total_s);

    Chi2Result res;
    double stat = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < sample1.size(); ++i) {
        const double r = sample1[i];
        const double s = sample2[i];
        if (r == 0.0 && s == 0.0)
            continue;
        const double d = scale_r * r - scale_s * s;
        stat += d * d / (r + s);
        ++used;
    }

    res.statistic = stat;
    res.usedBins = used;
    res.df = static_cast<double>(used) - constraints;
    if (res.df <= 0.0) {
        res.df = 0.0;
        res.pValue = stat <= 1e-9 ? 1.0 : 0.0;
    } else {
        res.pValue = chiSquareSf(stat, res.df);
    }
    return res;
}

std::vector<double>
uniformExpected(std::size_t num_bins, double total)
{
    panic_if(num_bins == 0, "uniformExpected needs at least one bin");
    return std::vector<double>(num_bins, total / num_bins);
}

std::vector<double>
pointMassExpected(std::size_t num_bins, std::uint64_t value, double total)
{
    panic_if(value >= num_bins, "point-mass value ", value,
             " outside domain of ", num_bins, " bins");
    std::vector<double> e(num_bins, 0.0);
    e[value] = total;
    return e;
}

} // namespace qsa::stats
