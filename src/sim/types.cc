/**
 * @file
 * Small dense 2x2 helpers.
 */

#include "sim/types.hh"

#include <algorithm>
#include <cmath>

namespace qsa::sim
{

Mat2
matMul(const Mat2 &lhs, const Mat2 &rhs)
{
    return Mat2{
        lhs.a00 * rhs.a00 + lhs.a01 * rhs.a10,
        lhs.a00 * rhs.a01 + lhs.a01 * rhs.a11,
        lhs.a10 * rhs.a00 + lhs.a11 * rhs.a10,
        lhs.a10 * rhs.a01 + lhs.a11 * rhs.a11,
    };
}

Mat2
matAdjoint(const Mat2 &m)
{
    return Mat2{
        std::conj(m.a00), std::conj(m.a10),
        std::conj(m.a01), std::conj(m.a11),
    };
}

double
matDistance(const Mat2 &a, const Mat2 &b)
{
    return std::max({std::abs(a.a00 - b.a00), std::abs(a.a01 - b.a01),
                     std::abs(a.a10 - b.a10), std::abs(a.a11 - b.a11)});
}

bool
matIsUnitary(const Mat2 &m, double tol)
{
    const Mat2 prod = matMul(matAdjoint(m), m);
    const Mat2 identity{1.0, 0.0, 0.0, 1.0};
    return matDistance(prod, identity) < tol;
}

Mat4
mat4Identity()
{
    Mat4 u{};
    for (unsigned r = 0; r < 4; ++r)
        u.at(r, r) = Complex(1.0);
    return u;
}

Mat4
mat4Mul(const Mat4 &lhs, const Mat4 &rhs)
{
    Mat4 out{};
    for (unsigned r = 0; r < 4; ++r) {
        for (unsigned c = 0; c < 4; ++c) {
            Complex acc(0.0);
            for (unsigned k = 0; k < 4; ++k)
                acc += lhs.at(r, k) * rhs.at(k, c);
            out.at(r, c) = acc;
        }
    }
    return out;
}

double
mat4Distance(const Mat4 &a, const Mat4 &b)
{
    double worst = 0.0;
    for (unsigned i = 0; i < 16; ++i)
        worst = std::max(worst, std::abs(a.m[i] - b.m[i]));
    return worst;
}

bool
mat4IsUnitary(const Mat4 &m, double tol)
{
    Mat4 adj{};
    for (unsigned r = 0; r < 4; ++r)
        for (unsigned c = 0; c < 4; ++c)
            adj.at(r, c) = std::conj(m.at(c, r));
    return mat4Distance(mat4Mul(adj, m), mat4Identity()) < tol;
}

} // namespace qsa::sim
