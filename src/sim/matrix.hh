/**
 * @file
 * Dense complex matrices for multi-qubit unitaries.
 *
 * Used in three places:
 *  - exact (non-Trotterized) time evolution for the chemistry benchmark,
 *  - the dense reference simulator that cross-validates the fast
 *    state-vector simulator (standing in for the paper's cross-language
 *    validation against LIQUi|>, ProjectQ, and Q#),
 *  - unitary-equivalence checks for Table 1 and Figure 4.
 *
 * Dimensions stay tiny (<= 2^6) so a simple row-major vector suffices.
 */

#ifndef QSA_SIM_MATRIX_HH
#define QSA_SIM_MATRIX_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace qsa::sim
{

/** Square, dense, row-major complex matrix. */
class CMatrix
{
  public:
    /** Zero matrix of the given dimension. */
    explicit CMatrix(std::size_t dim = 0);

    /** Identity matrix of the given dimension. */
    static CMatrix identity(std::size_t dim);

    /** Lift a single-qubit gate to a 2x2 CMatrix. */
    static CMatrix fromMat2(const Mat2 &m);

    /** Dimension (number of rows == columns). */
    std::size_t dim() const { return n; }

    /** Mutable element access. */
    Complex &at(std::size_t r, std::size_t c);

    /** Const element access. */
    const Complex &at(std::size_t r, std::size_t c) const;

    /** Matrix product this * rhs. */
    CMatrix mul(const CMatrix &rhs) const;

    /** Kronecker product this (x) rhs. */
    CMatrix kron(const CMatrix &rhs) const;

    /** Conjugate transpose. */
    CMatrix adjoint() const;

    /** Sum. */
    CMatrix add(const CMatrix &rhs) const;

    /** Scale by a complex factor. */
    CMatrix scale(Complex factor) const;

    /**
     * Controlled version: identity on the first 2^k "control = not all
     * ones" block, this matrix when all k new control qubits (prepended
     * as high-order bits) are 1.
     */
    CMatrix controlled(unsigned num_controls = 1) const;

    /** Apply to a state vector (dim must match). */
    std::vector<Complex> apply(const std::vector<Complex> &state) const;

    /** Max-norm distance between two matrices. */
    double distance(const CMatrix &rhs) const;

    /**
     * Distance up to a global phase: min over phases of the max-norm
     * distance; implemented by aligning the largest-magnitude entry.
     */
    double distanceUpToPhase(const CMatrix &rhs) const;

    /** True when unitary within tol. */
    bool isUnitary(double tol = 1e-9) const;

  private:
    std::size_t n;
    std::vector<Complex> data;
};

} // namespace qsa::sim

#endif // QSA_SIM_MATRIX_HH
