/**
 * @file
 * State-vector quantum simulator.
 *
 * This is the substrate standing in for the QX simulator [19] the paper
 * ran on a cluster: it holds the full 2^n amplitude vector, applies
 * gates, and performs projective measurements. The benchmark circuits
 * need at most 14 qubits, so a flat amplitude array is both exact and
 * fast.
 *
 * Qubit 0 is the least significant bit of a basis-state index (little
 * endian), matching the Scaffold listings in the paper.
 */

#ifndef QSA_SIM_STATEVECTOR_HH
#define QSA_SIM_STATEVECTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "sim/matrix.hh"
#include "sim/types.hh"

namespace qsa::sim
{

/**
 * Exact state-vector simulator for up to ~28 qubits (memory limited).
 *
 * The interface splits into:
 *  - unitary evolution: applyGate / applyControlled / applyUnitary,
 *  - projective measurement with collapse: measureQubit / measureQubits
 *    / prepZ (used by the "resimulate" ensemble mode, which mirrors the
 *    paper's one-simulation-per-ensemble-member methodology),
 *  - exact read-out without collapse: probability / marginalProbs /
 *    reducedDensityMatrix (used by the fast sampling ensemble mode and
 *    by test oracles that need ground truth about entanglement).
 */
class StateVector
{
  public:
    /** Construct |0...0> on num_qubits qubits. */
    explicit StateVector(unsigned num_qubits);

    /** Number of qubits. */
    unsigned numQubits() const { return nQubits; }

    /** Dimension of the state (2^n). */
    std::uint64_t dim() const { return amps.size(); }

    /** Amplitude of a basis state. */
    Complex amp(std::uint64_t basis) const;

    /** Overwrite the state with a basis state |basis>. */
    void setBasisState(std::uint64_t basis);

    /** Raw amplitude vector (read-only). */
    const std::vector<Complex> &amplitudes() const { return amps; }

    /** @{ @name Unitary evolution */

    /** Apply a single-qubit gate to the target qubit. */
    void applyGate(const Mat2 &gate, unsigned target);

    /**
     * Apply a single-qubit gate controlled on every qubit in controls
     * being |1>. An empty control list is an uncontrolled application.
     */
    void applyControlled(const Mat2 &gate,
                         const std::vector<unsigned> &controls,
                         unsigned target);

    /**
     * Apply a dense two-qubit gate; q0 is the least significant bit of
     * the matrix's 4-dimensional index space. This is the fusion
     * kernel: runs of adjacent 1q/2q gates on at most two qubits
     * collapse into one Mat4 apply.
     */
    void applyTwoQubit(const Mat4 &u, unsigned q0, unsigned q1);

    /** Controlled dense two-qubit gate. */
    void applyControlledTwoQubit(const Mat4 &u,
                                 const std::vector<unsigned> &controls,
                                 unsigned q0, unsigned q1);

    /** Swap two qubits. */
    void applySwap(unsigned q0, unsigned q1);

    /** Controlled swap (Fredkin) with arbitrary control list. */
    void applyControlledSwap(const std::vector<unsigned> &controls,
                             unsigned q0, unsigned q1);

    /**
     * Apply a dense unitary to an ordered list of qubits; qubits[0] is
     * the least significant bit of the matrix's index space. The matrix
     * dimension must be 2^qubits.size().
     */
    void applyUnitary(const CMatrix &u,
                      const std::vector<unsigned> &qubits);

    /** Controlled dense unitary. */
    void applyControlledUnitary(const CMatrix &u,
                                const std::vector<unsigned> &controls,
                                const std::vector<unsigned> &qubits);

    /** @} */
    /** @{ @name Measurement and reset */

    /**
     * Projectively measure one qubit; collapses the state and returns
     * the classical outcome.
     */
    unsigned measureQubit(unsigned qubit, Rng &rng);

    /**
     * Measure a list of qubits; the result packs qubits[i] as bit i.
     * Collapses the state.
     */
    std::uint64_t measureQubits(const std::vector<unsigned> &qubits,
                                Rng &rng);

    /**
     * Scaffold-style PrepZ: leaves the qubit in |bit>, measuring first
     * if it might be entangled (so the operation is physical).
     */
    void prepZ(unsigned qubit, unsigned bit, Rng &rng);

    /**
     * Deterministically project onto the subspace where `qubit` reads
     * `value`, renormalising — the outcome-resolved half of
     * measureQubit, used by callers that enumerate measurement
     * branches exactly (circuit::stepBranches) instead of sampling
     * one. `probability` is that outcome's probability (from
     * probabilityOne); the arithmetic matches measureQubit's collapse
     * bit for bit, so an enumerated branch equals the state a sampled
     * run landing on the same outcome would hold. Panics when the
     * branch probability is ~0.
     */
    void projectQubit(unsigned qubit, unsigned value,
                      double probability);

    /** @} */
    /** @{ @name Exact read-out (no collapse) */

    /** Probability that the given qubit measures |1>. */
    double probabilityOne(unsigned qubit) const;

    /**
     * Joint outcome distribution of a list of qubits: entry v is the
     * probability of reading value v (qubits[i] as bit i).
     */
    std::vector<double>
    marginalProbs(const std::vector<unsigned> &qubits) const;

    /**
     * Reduced density matrix of a subset of qubits (dimension
     * 2^qubits.size()); the remaining qubits are traced out.
     */
    CMatrix reducedDensityMatrix(const std::vector<unsigned> &qubits) const;

    /**
     * Purity Tr(rho^2) of the subset's reduced state: 1 for a product
     * state with the rest of the register, < 1 when entangled. This is
     * the ground-truth oracle tests use to validate the statistical
     * entanglement assertions.
     */
    double subsystemPurity(const std::vector<unsigned> &qubits) const;

    /** Squared norm of the state (should be 1). */
    double norm() const;

    /** Inner product <this|other>. */
    Complex innerProduct(const StateVector &other) const;

    /** Fidelity |<this|other>|^2. */
    double fidelity(const StateVector &other) const;

    /**
     * Tensor product |this> (x) |other>: a state on numQubits() +
     * other.numQubits() qubits whose low qubits are this state and
     * whose high qubits are `other`. Ground-truth composer for the
     * swap-test comparator *tests* (tests/test_sim.cc builds
     * suspect (x) reference (x) ancilla by hand to pin the partial
     * swap-test identity the probe family relies on; the probes
     * themselves prepare the two copies by circuit embedding).
     */
    StateVector tensorWith(const StateVector &other) const;

    /** @} */

    /** Renormalise (guards against drift in very long circuits). */
    void normalize();

  private:
    unsigned nQubits;
    std::vector<Complex> amps;

    /** Collapse to the subspace where qubit == value, renormalising. */
    void collapse(unsigned qubit, unsigned value, double prob);
};

} // namespace qsa::sim

#endif // QSA_SIM_STATEVECTOR_HH
