/**
 * @file
 * State-vector simulator implementation.
 */

#include "sim/statevector.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace qsa::sim
{

namespace
{
/** Practical cap: 2^28 amplitudes is 4 GiB of doubles. */
constexpr unsigned max_qubits = 28;

/**
 * One bookkeeping call per kernel invocation (never per amplitude):
 * gate applications and the amplitudes they sweep are the paper's
 * simulated-work currency, so every apply* kernel reports here.
 *
 * Accounting contract: `amps_touched` is the number of amplitude slots
 * the kernel actually reads/writes, each slot counted once — d for an
 * uncontrolled 1q gate, d/2^|c| for a controlled one (2 slots per
 * participating pair), d/2^(|c|+1) for a controlled swap. Kernels that
 * dispatch to another public kernel must not double-count.
 */
inline void
countGate(std::uint64_t amps_touched)
{
#if QSA_OBS_ENABLED
    static const obs::Counter &applies =
        obs::Registry::counter("sim.gate_applies");
    static const obs::Counter &touches =
        obs::Registry::counter("sim.amp_touches");
    obs::Counter::addTwo(applies, 1, touches, amps_touched);
#else
    (void)amps_touched;
#endif
}

/**
 * Decompose a reserved-bit mask into ascending single-bit masks for
 * expandIndex. Returns the number of reserved bits.
 */
inline unsigned
splitMask(std::uint64_t reserved, std::uint64_t *masks)
{
    unsigned k = 0;
    while (reserved) {
        const std::uint64_t low = reserved & (~reserved + 1);
        masks[k++] = low;
        reserved &= reserved - 1;
    }
    return k;
}

/**
 * Compact-index expansion: spread the bits of `i` across the positions
 * NOT covered by `masks` (ascending single-bit masks), leaving the
 * reserved positions clear. Enumerating i over [0, d >> k) yields, in
 * ascending order, exactly the basis indices with all reserved bits
 * zero — the mask-indexed iteration that lets controlled kernels visit
 * only participating amplitudes instead of scanning all d indices.
 */
inline std::uint64_t
expandIndex(std::uint64_t i, const std::uint64_t *masks, unsigned k)
{
    for (unsigned b = 0; b < k; ++b) {
        const std::uint64_t low = masks[b] - 1;
        i = ((i & ~low) << 1) | (i & low);
    }
    return i;
}
} // anonymous namespace

StateVector::StateVector(unsigned num_qubits) : nQubits(num_qubits)
{
    fatal_if(num_qubits == 0, "state vector needs at least one qubit");
    fatal_if(num_qubits > max_qubits, "refusing to allocate ",
             num_qubits, " qubits (limit ", max_qubits, ")");
    amps.assign(pow2(num_qubits), Complex(0.0));
    amps[0] = Complex(1.0);
}

Complex
StateVector::amp(std::uint64_t basis) const
{
    panic_if(basis >= dim(), "basis index out of range");
    return amps[basis];
}

void
StateVector::setBasisState(std::uint64_t basis)
{
    panic_if(basis >= dim(), "basis index out of range");
    std::fill(amps.begin(), amps.end(), Complex(0.0));
    amps[basis] = Complex(1.0);
}

void
StateVector::applyGate(const Mat2 &gate, unsigned target)
{
    panic_if(target >= nQubits, "gate target out of range");

    const std::uint64_t stride = pow2(target);
    const std::uint64_t d = dim();
    countGate(d);
    for (std::uint64_t base = 0; base < d; base += 2 * stride) {
        for (std::uint64_t off = 0; off < stride; ++off) {
            const std::uint64_t i0 = base + off;
            const std::uint64_t i1 = i0 + stride;
            const Complex a0 = amps[i0];
            const Complex a1 = amps[i1];
            amps[i0] = gate.a00 * a0 + gate.a01 * a1;
            amps[i1] = gate.a10 * a0 + gate.a11 * a1;
        }
    }
}

void
StateVector::applyControlled(const Mat2 &gate,
                             const std::vector<unsigned> &controls,
                             unsigned target)
{
    if (controls.empty()) {
        applyGate(gate, target);
        return;
    }

    panic_if(target >= nQubits, "gate target out of range");
    std::uint64_t cmask = 0;
    for (unsigned c : controls) {
        panic_if(c >= nQubits, "control qubit out of range");
        panic_if(c == target, "control equals target");
        cmask |= pow2(c);
    }

    const std::uint64_t tmask = pow2(target);
    std::uint64_t masks[64];
    const unsigned k = splitMask(cmask | tmask, masks);
    const std::uint64_t pairs = dim() >> k;
    countGate(2 * pairs);
    for (std::uint64_t i = 0; i < pairs; ++i) {
        const std::uint64_t i0 = expandIndex(i, masks, k) | cmask;
        const std::uint64_t i1 = i0 | tmask;
        const Complex a0 = amps[i0];
        const Complex a1 = amps[i1];
        amps[i0] = gate.a00 * a0 + gate.a01 * a1;
        amps[i1] = gate.a10 * a0 + gate.a11 * a1;
    }
}

void
StateVector::applyTwoQubit(const Mat4 &u, unsigned q0, unsigned q1)
{
    applyControlledTwoQubit(u, {}, q0, q1);
}

void
StateVector::applyControlledTwoQubit(const Mat4 &u,
                                     const std::vector<unsigned> &controls,
                                     unsigned q0, unsigned q1)
{
    panic_if(q0 >= nQubits || q1 >= nQubits,
             "two-qubit gate target out of range");
    panic_if(q0 == q1, "two-qubit gate requires distinct qubits");

    std::uint64_t cmask = 0;
    for (unsigned c : controls) {
        panic_if(c >= nQubits, "control qubit out of range");
        panic_if(c == q0 || c == q1, "control equals target");
        cmask |= pow2(c);
    }

    const std::uint64_t m0 = pow2(q0);
    const std::uint64_t m1 = pow2(q1);
    std::uint64_t masks[64];
    const unsigned k = splitMask(cmask | m0 | m1, masks);
    const std::uint64_t cosets = dim() >> k;
    countGate(4 * cosets);
    for (std::uint64_t i = 0; i < cosets; ++i) {
        const std::uint64_t base = expandIndex(i, masks, k) | cmask;
        const std::uint64_t idx[4] = {base, base | m0, base | m1,
                                      base | m0 | m1};
        const Complex a0 = amps[idx[0]];
        const Complex a1 = amps[idx[1]];
        const Complex a2 = amps[idx[2]];
        const Complex a3 = amps[idx[3]];
        for (unsigned r = 0; r < 4; ++r) {
            amps[idx[r]] = u.at(r, 0) * a0 + u.at(r, 1) * a1 +
                           u.at(r, 2) * a2 + u.at(r, 3) * a3;
        }
    }
}

void
StateVector::applySwap(unsigned q0, unsigned q1)
{
    applyControlledSwap({}, q0, q1);
}

void
StateVector::applyControlledSwap(const std::vector<unsigned> &controls,
                                 unsigned q0, unsigned q1)
{
    panic_if(q0 >= nQubits || q1 >= nQubits, "swap qubit out of range");
    panic_if(q0 == q1, "swap requires distinct qubits");

    std::uint64_t cmask = 0;
    for (unsigned c : controls) {
        panic_if(c >= nQubits, "control qubit out of range");
        panic_if(c == q0 || c == q1, "control equals swap target");
        cmask |= pow2(c);
    }

    const std::uint64_t m0 = pow2(q0);
    const std::uint64_t m1 = pow2(q1);
    std::uint64_t masks[64];
    const unsigned k = splitMask(cmask | m0 | m1, masks);
    const std::uint64_t pairs = dim() >> k;
    countGate(2 * pairs);
    for (std::uint64_t p = 0; p < pairs; ++p) {
        // Visit each swapped pair once: q0 set, q1 clear.
        const std::uint64_t base = expandIndex(p, masks, k) | cmask;
        std::swap(amps[base | m0], amps[base | m1]);
    }
}

void
StateVector::applyUnitary(const CMatrix &u,
                          const std::vector<unsigned> &qubits)
{
    applyControlledUnitary(u, {}, qubits);
}

void
StateVector::applyControlledUnitary(const CMatrix &u,
                                    const std::vector<unsigned> &controls,
                                    const std::vector<unsigned> &qubits)
{
    const unsigned k = qubits.size();
    panic_if(u.dim() != pow2(k), "unitary dimension mismatch");
    for (unsigned q : qubits) {
        panic_if(q >= nQubits, "unitary qubit out of range");
        for (unsigned c : controls)
            panic_if(c == q, "controls overlap unitary targets");
    }

    // Fast dispatch: small dense unitaries — including every fused
    // block the gate-fusion pass emits — run through the specialised
    // pair/Mat4 kernels. The dispatched kernel does the counting.
    if (k == 1) {
        applyControlled(Mat2{u.at(0, 0), u.at(0, 1), u.at(1, 0),
                             u.at(1, 1)},
                        controls, qubits[0]);
        return;
    }
    if (k == 2) {
        Mat4 dense;
        for (unsigned r = 0; r < 4; ++r)
            for (unsigned c = 0; c < 4; ++c)
                dense.at(r, c) = u.at(r, c);
        applyControlledTwoQubit(dense, controls, qubits[0], qubits[1]);
        return;
    }

    std::uint64_t cmask = 0;
    for (unsigned c : controls) {
        panic_if(c >= nQubits, "control qubit out of range");
        cmask |= pow2(c);
    }
    std::uint64_t qmask = 0;
    for (unsigned q : qubits)
        qmask |= pow2(q);
    panic_if(cmask & qmask, "controls overlap unitary targets");

    const std::uint64_t sub = pow2(k);
    std::vector<Complex> in(sub), out(sub);
    std::uint64_t masks[64];
    const unsigned reserved = splitMask(cmask | qmask, masks);
    const std::uint64_t cosets = dim() >> reserved;
    countGate(sub * cosets);

    for (std::uint64_t ci = 0; ci < cosets; ++ci) {
        // Enumerate each participating coset once: all target bits
        // clear, all control bits set.
        const std::uint64_t base = expandIndex(ci, masks, reserved) |
                                   cmask;
        for (std::uint64_t v = 0; v < sub; ++v)
            in[v] = amps[depositBits(base, qubits, v)];
        for (std::uint64_t r = 0; r < sub; ++r) {
            Complex acc(0.0);
            for (std::uint64_t c = 0; c < sub; ++c)
                acc += u.at(r, c) * in[c];
            out[r] = acc;
        }
        for (std::uint64_t v = 0; v < sub; ++v)
            amps[depositBits(base, qubits, v)] = out[v];
    }
}

unsigned
StateVector::measureQubit(unsigned qubit, Rng &rng)
{
    panic_if(qubit >= nQubits, "measured qubit out of range");

    QSA_OBS_COUNTER("sim.measurements", 1);
    const double p1 = probabilityOne(qubit);
    const unsigned outcome = rng.bernoulli(p1) ? 1 : 0;
    collapse(qubit, outcome, outcome ? p1 : 1.0 - p1);
    return outcome;
}

std::uint64_t
StateVector::measureQubits(const std::vector<unsigned> &qubits, Rng &rng)
{
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < qubits.size(); ++i)
        value |= static_cast<std::uint64_t>(measureQubit(qubits[i], rng))
                 << i;
    return value;
}

void
StateVector::prepZ(unsigned qubit, unsigned bit, Rng &rng)
{
    const unsigned current = measureQubit(qubit, rng);
    if (current != (bit & 1))
        applyGate(Mat2{0.0, 1.0, 1.0, 0.0}, qubit);
}

void
StateVector::projectQubit(unsigned qubit, unsigned value,
                          double probability)
{
    panic_if(qubit >= nQubits, "projected qubit out of range");
    collapse(qubit, value & 1, probability);
}

double
StateVector::probabilityOne(unsigned qubit) const
{
    panic_if(qubit >= nQubits, "qubit out of range");
    // Stride-blocked over the |1> half only: same ascending visit
    // order (so bit-identical sums), half the indices scanned.
    const std::uint64_t stride = pow2(qubit);
    const std::uint64_t d = dim();
    double p1 = 0.0;
    for (std::uint64_t base = stride; base < d; base += 2 * stride) {
        for (std::uint64_t off = 0; off < stride; ++off)
            p1 += std::norm(amps[base + off]);
    }
    return std::min(1.0, std::max(0.0, p1));
}

std::vector<double>
StateVector::marginalProbs(const std::vector<unsigned> &qubits) const
{
    for (unsigned q : qubits)
        panic_if(q >= nQubits, "qubit out of range");

    std::vector<double> probs(pow2(qubits.size()), 0.0);
    for (std::uint64_t i = 0; i < dim(); ++i) {
        const double p = std::norm(amps[i]);
        if (p == 0.0)
            continue;
        probs[extractBits(i, qubits)] += p;
    }
    return probs;
}

CMatrix
StateVector::reducedDensityMatrix(
    const std::vector<unsigned> &qubits) const
{
    const unsigned k = qubits.size();
    panic_if(k > 16, "reduced density matrix too large");
    for (unsigned q : qubits)
        panic_if(q >= nQubits, "qubit out of range");

    std::uint64_t qmask = 0;
    for (unsigned q : qubits)
        qmask |= pow2(q);

    const std::uint64_t sub = pow2(k);
    CMatrix rho(sub);
    const std::uint64_t d = dim();
    for (std::uint64_t base = 0; base < d; ++base) {
        if (base & qmask)
            continue; // enumerate environment configurations once
        for (std::uint64_t r = 0; r < sub; ++r) {
            const Complex ar = amps[depositBits(base, qubits, r)];
            if (ar == Complex(0.0))
                continue;
            for (std::uint64_t c = 0; c < sub; ++c) {
                const Complex ac = amps[depositBits(base, qubits, c)];
                rho.at(r, c) += ar * std::conj(ac);
            }
        }
    }
    return rho;
}

double
StateVector::subsystemPurity(const std::vector<unsigned> &qubits) const
{
    const CMatrix rho = reducedDensityMatrix(qubits);
    double purity = 0.0;
    for (std::size_t r = 0; r < rho.dim(); ++r)
        for (std::size_t c = 0; c < rho.dim(); ++c)
            purity += std::norm(rho.at(r, c));
    return purity;
}

double
StateVector::norm() const
{
    double s = 0.0;
    for (const Complex &a : amps)
        s += std::norm(a);
    return s;
}

Complex
StateVector::innerProduct(const StateVector &other) const
{
    panic_if(dim() != other.dim(), "state dimension mismatch");
    Complex acc(0.0);
    for (std::uint64_t i = 0; i < dim(); ++i)
        acc += std::conj(amps[i]) * other.amps[i];
    return acc;
}

double
StateVector::fidelity(const StateVector &other) const
{
    return std::norm(innerProduct(other));
}

StateVector
StateVector::tensorWith(const StateVector &other) const
{
    fatal_if(nQubits + other.nQubits > 28,
             "tensor product of ", static_cast<unsigned>(nQubits),
             " + ", static_cast<unsigned>(other.nQubits),
             " qubits exceeds the simulator's memory budget");
    StateVector product(nQubits + other.nQubits);
    product.amps.assign(product.amps.size(), Complex(0.0));
    for (std::uint64_t hi = 0; hi < other.dim(); ++hi) {
        const Complex scale = other.amps[hi];
        if (scale == Complex(0.0))
            continue;
        const std::uint64_t base = hi << nQubits;
        for (std::uint64_t lo = 0; lo < dim(); ++lo)
            product.amps[base | lo] = scale * amps[lo];
    }
    return product;
}

void
StateVector::normalize()
{
    const double n = std::sqrt(norm());
    panic_if(n < 1e-12, "cannot normalise a zero state");
    for (Complex &a : amps)
        a /= n;
}

void
StateVector::collapse(unsigned qubit, unsigned value, double prob)
{
    // Guard against collapsing onto a zero-probability branch due to
    // floating-point round-off.
    panic_if(prob < 1e-15, "collapse onto zero-probability branch");

    const std::uint64_t mask = pow2(qubit);
    const double scale = 1.0 / std::sqrt(prob);
    for (std::uint64_t i = 0; i < dim(); ++i) {
        const bool bit = (i & mask) != 0;
        if (bit != static_cast<bool>(value))
            amps[i] = Complex(0.0);
        else
            amps[i] *= scale;
    }
}

} // namespace qsa::sim
