/**
 * @file
 * Standard single-qubit gate matrices.
 *
 * Conventions (matching Nielsen & Chuang [35]):
 *  - rz(theta)    = exp(-i theta Z / 2) = diag(e^{-i t/2}, e^{+i t/2})
 *  - phase(theta) = diag(1, e^{i theta}) (the "u1" gate)
 *
 * rz and phase differ by a global phase e^{i theta / 2}. The difference
 * is invisible for uncontrolled gates but decisive once controlled —
 * exactly the class of subtlety Section 4.2 of the paper highlights
 * (Table 1's "incorrect, angles flipped" bug). The Fourier-space
 * arithmetic of Listings 2-4 requires the phase-gate semantics for its
 * controlled rotations.
 */

#ifndef QSA_SIM_GATES_HH
#define QSA_SIM_GATES_HH

#include "sim/types.hh"

namespace qsa::sim::gates
{

/** Hadamard. */
Mat2 h();

/** Pauli X. */
Mat2 x();

/** Pauli Y. */
Mat2 y();

/** Pauli Z. */
Mat2 z();

/** Phase gate S = diag(1, i). */
Mat2 s();

/** S dagger. */
Mat2 sdg();

/** T = diag(1, e^{i pi/4}). */
Mat2 t();

/** T dagger. */
Mat2 tdg();

/** Rotation about X by theta: exp(-i theta X / 2). */
Mat2 rx(double theta);

/** Rotation about Y by theta: exp(-i theta Y / 2). */
Mat2 ry(double theta);

/** Rotation about Z by theta: exp(-i theta Z / 2). */
Mat2 rz(double theta);

/** Phase ("u1") gate diag(1, e^{i theta}). */
Mat2 phase(double theta);

/** Identity. */
Mat2 identity();

} // namespace qsa::sim::gates

#endif // QSA_SIM_GATES_HH
