/**
 * @file
 * Dense matrix implementation.
 */

#include "sim/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace qsa::sim
{

CMatrix::CMatrix(std::size_t dim) : n(dim), data(dim * dim, Complex(0.0))
{
}

CMatrix
CMatrix::identity(std::size_t dim)
{
    CMatrix m(dim);
    for (std::size_t i = 0; i < dim; ++i)
        m.at(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::fromMat2(const Mat2 &g)
{
    CMatrix m(2);
    m.at(0, 0) = g.a00;
    m.at(0, 1) = g.a01;
    m.at(1, 0) = g.a10;
    m.at(1, 1) = g.a11;
    return m;
}

Complex &
CMatrix::at(std::size_t r, std::size_t c)
{
    panic_if(r >= n || c >= n, "matrix index out of range");
    return data[r * n + c];
}

const Complex &
CMatrix::at(std::size_t r, std::size_t c) const
{
    panic_if(r >= n || c >= n, "matrix index out of range");
    return data[r * n + c];
}

CMatrix
CMatrix::mul(const CMatrix &rhs) const
{
    panic_if(n != rhs.n, "matrix dimension mismatch in mul");
    CMatrix out(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t k = 0; k < n; ++k) {
            const Complex v = at(r, k);
            if (v == Complex(0.0))
                continue;
            for (std::size_t c = 0; c < n; ++c)
                out.at(r, c) += v * rhs.at(k, c);
        }
    }
    return out;
}

CMatrix
CMatrix::kron(const CMatrix &rhs) const
{
    CMatrix out(n * rhs.n);
    for (std::size_t r1 = 0; r1 < n; ++r1)
        for (std::size_t c1 = 0; c1 < n; ++c1)
            for (std::size_t r2 = 0; r2 < rhs.n; ++r2)
                for (std::size_t c2 = 0; c2 < rhs.n; ++c2)
                    out.at(r1 * rhs.n + r2, c1 * rhs.n + c2) =
                        at(r1, c1) * rhs.at(r2, c2);
    return out;
}

CMatrix
CMatrix::adjoint() const
{
    CMatrix out(n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            out.at(c, r) = std::conj(at(r, c));
    return out;
}

CMatrix
CMatrix::add(const CMatrix &rhs) const
{
    panic_if(n != rhs.n, "matrix dimension mismatch in add");
    CMatrix out(n);
    for (std::size_t i = 0; i < data.size(); ++i)
        out.data[i] = data[i] + rhs.data[i];
    return out;
}

CMatrix
CMatrix::scale(Complex factor) const
{
    CMatrix out(n);
    for (std::size_t i = 0; i < data.size(); ++i)
        out.data[i] = data[i] * factor;
    return out;
}

CMatrix
CMatrix::controlled(unsigned num_controls) const
{
    CMatrix out = *this;
    for (unsigned k = 0; k < num_controls; ++k) {
        const std::size_t d = out.n;
        CMatrix next = CMatrix::identity(2 * d);
        for (std::size_t r = 0; r < d; ++r)
            for (std::size_t c = 0; c < d; ++c)
                next.at(d + r, d + c) = out.at(r, c);
        out = next;
    }
    return out;
}

std::vector<Complex>
CMatrix::apply(const std::vector<Complex> &state) const
{
    panic_if(state.size() != n, "state dimension mismatch in apply");
    std::vector<Complex> out(n, Complex(0.0));
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            out[r] += at(r, c) * state[c];
    return out;
}

double
CMatrix::distance(const CMatrix &rhs) const
{
    panic_if(n != rhs.n, "matrix dimension mismatch in distance");
    double d = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        d = std::max(d, std::abs(data[i] - rhs.data[i]));
    return d;
}

double
CMatrix::distanceUpToPhase(const CMatrix &rhs) const
{
    panic_if(n != rhs.n, "matrix dimension mismatch");

    // Align the phase of the largest-magnitude entry of rhs.
    std::size_t best = 0;
    double best_mag = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double mag = std::abs(rhs.data[i]);
        if (mag > best_mag) {
            best_mag = mag;
            best = i;
        }
    }
    if (best_mag < 1e-14 || std::abs(data[best]) < 1e-14)
        return distance(rhs);

    const Complex phase =
        (data[best] / std::abs(data[best])) /
        (rhs.data[best] / std::abs(rhs.data[best]));
    return distance(rhs.scale(phase));
}

bool
CMatrix::isUnitary(double tol) const
{
    return adjoint().mul(*this).distance(identity(n)) < tol;
}

} // namespace qsa::sim
