/**
 * @file
 * Gate matrix definitions.
 */

#include "sim/gates.hh"

#include <cmath>

namespace qsa::sim::gates
{

namespace
{
const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
const Complex i_unit(0.0, 1.0);
} // anonymous namespace

Mat2
h()
{
    return Mat2{inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
}

Mat2
x()
{
    return Mat2{0.0, 1.0, 1.0, 0.0};
}

Mat2
y()
{
    return Mat2{0.0, -i_unit, i_unit, 0.0};
}

Mat2
z()
{
    return Mat2{1.0, 0.0, 0.0, -1.0};
}

Mat2
s()
{
    return Mat2{1.0, 0.0, 0.0, i_unit};
}

Mat2
sdg()
{
    return Mat2{1.0, 0.0, 0.0, -i_unit};
}

Mat2
t()
{
    return Mat2{1.0, 0.0, 0.0, std::exp(i_unit * (M_PI / 4.0))};
}

Mat2
tdg()
{
    return Mat2{1.0, 0.0, 0.0, std::exp(-i_unit * (M_PI / 4.0))};
}

Mat2
rx(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s_ = std::sin(theta / 2.0);
    return Mat2{c, -i_unit * s_, -i_unit * s_, c};
}

Mat2
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s_ = std::sin(theta / 2.0);
    return Mat2{c, -s_, s_, c};
}

Mat2
rz(double theta)
{
    return Mat2{std::exp(-i_unit * (theta / 2.0)), 0.0, 0.0,
                std::exp(i_unit * (theta / 2.0))};
}

Mat2
phase(double theta)
{
    return Mat2{1.0, 0.0, 0.0, std::exp(i_unit * theta)};
}

Mat2
identity()
{
    return Mat2{1.0, 0.0, 0.0, 1.0};
}

} // namespace qsa::sim::gates
