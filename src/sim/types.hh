/**
 * @file
 * Core numeric types for the state-vector simulator.
 */

#ifndef QSA_SIM_TYPES_HH
#define QSA_SIM_TYPES_HH

#include <complex>

namespace qsa::sim
{

/** Amplitude type used throughout the simulator. */
using Complex = std::complex<double>;

/** A 2x2 single-qubit gate matrix, row major. */
struct Mat2
{
    Complex a00, a01;
    Complex a10, a11;
};

/** Matrix product of two single-qubit gates (lhs applied after rhs). */
Mat2 matMul(const Mat2 &lhs, const Mat2 &rhs);

/** Conjugate transpose of a single-qubit gate. */
Mat2 matAdjoint(const Mat2 &m);

/** Max-norm distance between two single-qubit gates. */
double matDistance(const Mat2 &a, const Mat2 &b);

/** True when m is unitary to within tol. */
bool matIsUnitary(const Mat2 &m, double tol = 1e-10);

} // namespace qsa::sim

#endif // QSA_SIM_TYPES_HH
