/**
 * @file
 * Core numeric types for the state-vector simulator.
 */

#ifndef QSA_SIM_TYPES_HH
#define QSA_SIM_TYPES_HH

#include <complex>

namespace qsa::sim
{

/** Amplitude type used throughout the simulator. */
using Complex = std::complex<double>;

/** A 2x2 single-qubit gate matrix, row major. */
struct Mat2
{
    Complex a00, a01;
    Complex a10, a11;
};

/** Matrix product of two single-qubit gates (lhs applied after rhs). */
Mat2 matMul(const Mat2 &lhs, const Mat2 &rhs);

/** Conjugate transpose of a single-qubit gate. */
Mat2 matAdjoint(const Mat2 &m);

/** Max-norm distance between two single-qubit gates. */
double matDistance(const Mat2 &a, const Mat2 &b);

/** True when m is unitary to within tol. */
bool matIsUnitary(const Mat2 &m, double tol = 1e-10);

/**
 * A 4x4 two-qubit gate matrix, row major. Bit 0 of the index space is
 * the kernel's first qubit argument (little endian, like basis-state
 * indices). This is the fusion target: runs of 1q/2q gates on at most
 * two qubits collapse into one Mat4 apply.
 */
struct Mat4
{
    Complex m[16];

    Complex &at(unsigned r, unsigned c) { return m[r * 4 + c]; }
    const Complex &at(unsigned r, unsigned c) const
    {
        return m[r * 4 + c];
    }
};

/** 4x4 identity. */
Mat4 mat4Identity();

/** Matrix product of two two-qubit gates (lhs applied after rhs). */
Mat4 mat4Mul(const Mat4 &lhs, const Mat4 &rhs);

/** Max-norm distance between two two-qubit gates. */
double mat4Distance(const Mat4 &a, const Mat4 &b);

/** True when m is unitary to within tol. */
bool mat4IsUnitary(const Mat4 &m, double tol = 1e-10);

} // namespace qsa::sim

#endif // QSA_SIM_TYPES_HH
