/**
 * @file
 * Circuit intermediate representation: one instruction.
 *
 * Controlled gates are not separate opcodes; every instruction carries a
 * (possibly empty) control-qubit list. This directly models the paper's
 * observation that "controlled operations correspond to using recursion
 * to compose basic operations" (Section 4.4, Figure 4): adding a control
 * is a structural wrapper, not a new gate.
 */

#ifndef QSA_CIRCUIT_INSTRUCTION_HH
#define QSA_CIRCUIT_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace qsa::circuit
{

/** Base operation kinds (controls are orthogonal, see Instruction). */
enum class GateKind
{
    PrepZ,      ///< reset target to |bit> (non-unitary)
    H,          ///< Hadamard
    X,          ///< Pauli X (with 1 control: CNOT; 2: Toffoli)
    Y,          ///< Pauli Y
    Z,          ///< Pauli Z (with 1 control: CZ)
    S,          ///< S phase gate
    Sdg,        ///< S dagger
    T,          ///< T gate
    Tdg,        ///< T dagger
    Rx,         ///< rotation about X by angle
    Ry,         ///< rotation about Y by angle
    Rz,         ///< rotation about Z by angle (true rotation)
    Phase,      ///< diag(1, e^{i angle}) ("u1"; cPhase/ccPhase via
                ///< controls — the workhorse of the Fourier arithmetic)
    Swap,       ///< swap two targets (with controls: Fredkin)
    Unitary,    ///< dense matrix from the circuit's side table
    Measure,    ///< projective measurement, outcome recorded by label
    Breakpoint, ///< assertion site marker (no-op when executed)
};

/** Human-readable mnemonic for a gate kind. */
std::string gateKindName(GateKind kind);

/** True for kinds that take an angle parameter. */
bool gateKindHasAngle(GateKind kind);

/** True for kinds invertible as unitaries. */
bool gateKindInvertible(GateKind kind);

/** One IR instruction. */
struct Instruction
{
    /** Base operation. */
    GateKind kind = GateKind::X;

    /** Control qubits (all must read |1> for the base op to fire). */
    std::vector<unsigned> controls;

    /**
     * Target qubits: one for single-qubit kinds, two for Swap, k for
     * Unitary (LSB first), any number for Measure/PrepZ/Breakpoint.
     */
    std::vector<unsigned> targets;

    /** Rotation/phase angle for Rx/Ry/Rz/Phase. */
    double angle = 0.0;

    /** Prepared bit value for PrepZ. */
    unsigned bit = 0;

    /** Index into the circuit's dense-matrix table for Unitary. */
    int matrixId = -1;

    /** Breakpoint label or measurement record name. */
    std::string label;

    /**
     * Classical condition: when `condLabel` is non-empty the
     * instruction only executes if the recorded measurement outcome
     * under that label equals `condValue` — OpenQASM's
     * `if (c == v)` and the mechanism behind semiclassical circuits
     * such as Beauregard's one-control-qubit Shor [2].
     */
    std::string condLabel;

    /** Value the condition register must hold. */
    std::uint64_t condValue = 0;
};

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_INSTRUCTION_HH
