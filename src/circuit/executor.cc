/**
 * @file
 * Executor implementation: the interpreter mapping IR instructions to
 * state-vector operations.
 */

#include "circuit/executor.hh"

#include "common/logging.hh"
#include "sim/gates.hh"

namespace qsa::circuit
{

namespace
{

/** Gate matrix for a parameterised/fixed single-qubit kind. */
sim::Mat2
gateMatrix(const Instruction &inst)
{
    using namespace sim::gates;
    switch (inst.kind) {
      case GateKind::H: return h();
      case GateKind::X: return x();
      case GateKind::Y: return y();
      case GateKind::Z: return z();
      case GateKind::S: return s();
      case GateKind::Sdg: return sdg();
      case GateKind::T: return t();
      case GateKind::Tdg: return tdg();
      case GateKind::Rx: return rx(inst.angle);
      case GateKind::Ry: return ry(inst.angle);
      case GateKind::Rz: return rz(inst.angle);
      case GateKind::Phase: return phase(inst.angle);
      default:
        panic("no 2x2 matrix for ", gateKindName(inst.kind));
    }
}

} // anonymous namespace

void
runCircuitOn(const Circuit &circ, sim::StateVector &state,
             std::map<std::string, std::uint64_t> &measurements,
             Rng &rng)
{
    fatal_if(state.numQubits() < circ.numQubits(),
             "state too small for circuit: ", state.numQubits(), " < ",
             circ.numQubits());

    for (const Instruction &inst : circ.instructions()) {
        if (!inst.condLabel.empty()) {
            const auto it = measurements.find(inst.condLabel);
            fatal_if(it == measurements.end(),
                     "conditional instruction references unmeasured "
                     "label '", inst.condLabel, "'");
            if (it->second != inst.condValue)
                continue;
        }
        switch (inst.kind) {
          case GateKind::PrepZ:
            state.prepZ(inst.targets[0], inst.bit, rng);
            break;
          case GateKind::Swap:
            state.applyControlledSwap(inst.controls, inst.targets[0],
                                      inst.targets[1]);
            break;
          case GateKind::Unitary:
            state.applyControlledUnitary(circ.matrix(inst.matrixId),
                                         inst.controls, inst.targets);
            break;
          case GateKind::Measure:
            measurements[inst.label] =
                state.measureQubits(inst.targets, rng);
            break;
          case GateKind::Breakpoint:
            break; // markers are inert during full execution
          default:
            state.applyControlled(gateMatrix(inst), inst.controls,
                                  inst.targets[0]);
            break;
        }
    }
}

ExecutionRecord
runCircuit(const Circuit &circ, Rng &rng)
{
    fatal_if(circ.numQubits() == 0, "cannot run a circuit with no qubits");
    ExecutionRecord record(circ.numQubits());
    runCircuitOn(circ, record.state, record.measurements, rng);
    return record;
}

} // namespace qsa::circuit
