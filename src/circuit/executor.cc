/**
 * @file
 * Executor implementation: the interpreter mapping IR instructions to
 * state-vector operations.
 */

#include "circuit/executor.hh"

#include "common/errors.hh"
#include "common/logging.hh"
#include "sim/gates.hh"

namespace qsa::circuit
{

sim::Mat2
gateMatrix1q(const Instruction &inst)
{
    using namespace sim::gates;
    switch (inst.kind) {
      case GateKind::H: return h();
      case GateKind::X: return x();
      case GateKind::Y: return y();
      case GateKind::Z: return z();
      case GateKind::S: return s();
      case GateKind::Sdg: return sdg();
      case GateKind::T: return t();
      case GateKind::Tdg: return tdg();
      case GateKind::Rx: return rx(inst.angle);
      case GateKind::Ry: return ry(inst.angle);
      case GateKind::Rz: return rz(inst.angle);
      case GateKind::Phase: return phase(inst.angle);
      default:
        panic("no 2x2 matrix for ", gateKindName(inst.kind));
    }
}

void
applyUnitaryInstruction(const Circuit &circ, const Instruction &inst,
                        sim::StateVector &state)
{
    switch (inst.kind) {
      case GateKind::Swap:
        state.applyControlledSwap(inst.controls, inst.targets[0],
                                  inst.targets[1]);
        break;
      case GateKind::Unitary:
        state.applyControlledUnitary(circ.matrix(inst.matrixId),
                                     inst.controls, inst.targets);
        break;
      case GateKind::Breakpoint:
        break; // markers are inert during execution
      case GateKind::PrepZ:
      case GateKind::Measure:
        panic("applyUnitaryInstruction cannot execute ",
              gateKindName(inst.kind));
      default:
        state.applyControlled(gateMatrix1q(inst), inst.controls,
                              inst.targets[0]);
        break;
    }
}

void
stepInstruction(const Circuit &circ, const Instruction &inst,
                sim::StateVector &state,
                std::map<std::string, std::uint64_t> &measurements,
                Rng &rng)
{
    if (!inst.condLabel.empty()) {
        const auto it = measurements.find(inst.condLabel);
        fatal_if(it == measurements.end(),
                 "conditional instruction references unmeasured "
                 "label '", inst.condLabel, "'");
        if (it->second != inst.condValue)
            return;
    }
    switch (inst.kind) {
      case GateKind::PrepZ:
        state.prepZ(inst.targets[0], inst.bit, rng);
        break;
      case GateKind::Measure:
        measurements[inst.label] =
            state.measureQubits(inst.targets, rng);
        break;
      default:
        applyUnitaryInstruction(circ, inst, state);
        break;
    }
}

void
runCircuitOn(const Circuit &circ, sim::StateVector &state,
             std::map<std::string, std::uint64_t> &measurements,
             Rng &rng)
{
    fatal_if(state.numQubits() < circ.numQubits(),
             "state too small for circuit: ", state.numQubits(), " < ",
             circ.numQubits());

    for (const Instruction &inst : circ.instructions())
        stepInstruction(circ, inst, state, measurements, rng);
}

ExecutionRecord
runCircuit(const Circuit &circ, Rng &rng)
{
    fatal_if(circ.numQubits() == 0, "cannot run a circuit with no qubits");
    ExecutionRecord record(circ.numQubits());
    runCircuitOn(circ, record.state, record.measurements, rng);
    return record;
}

namespace
{

/**
 * Branch probabilities below this floor are pruned: they are
 * floating-point dust (an exactly-impossible outcome whose computed
 * probability is a rounding error away from zero), and keeping them
 * would both blow up the branch count and trip the simulator's
 * zero-probability collapse guard.
 */
constexpr double kBranchFloor = 1e-12;

/**
 * Split one branch on the outcome of measuring `qubit`, appending the
 * surviving children to `out`. When `label` is non-null the outcome
 * is recorded into the child's measurement map as bit `bit_index` of
 * that label's value. When `correct_to_bit` is non-negative the child
 * is X-corrected to that bit after the collapse (the reset
 * semantics of StateVector::prepZ).
 */
void
splitOnQubit(ExecutionBranch branch, unsigned qubit,
             const std::string *label, unsigned bit_index,
             int correct_to_bit, std::vector<ExecutionBranch> &out)
{
    const double p1 = branch.state.probabilityOne(qubit);
    const double prob[2] = {1.0 - p1, p1};

    // Child 0 first, then child 1: the ordering (and hence every
    // downstream weighted sum) is deterministic.
    for (unsigned outcome = 0; outcome < 2; ++outcome) {
        if (prob[outcome] <= kBranchFloor)
            continue;
        const bool last = outcome == 1 || prob[1] <= kBranchFloor;
        ExecutionBranch child =
            last ? std::move(branch) : branch; // copy only when split
        child.weight *= prob[outcome];
        child.state.projectQubit(qubit, outcome, prob[outcome]);
        if (label != nullptr) {
            child.measurements[*label] |=
                static_cast<std::uint64_t>(outcome) << bit_index;
        }
        if (correct_to_bit >= 0 &&
            outcome != static_cast<unsigned>(correct_to_bit)) {
            child.state.applyGate(sim::Mat2{0.0, 1.0, 1.0, 0.0},
                                  qubit);
        }
        out.push_back(std::move(child));
        if (last)
            break;
    }
}

} // anonymous namespace

namespace
{

/**
 * One diagnostic for every branch-cap overflow: name the instruction
 * that overflowed and say what to do about it, instead of silently
 * truncating the mixture (a truncated mixture would make every
 * downstream predicate quietly wrong). Thrown rather than fatal so
 * callers with a fallback — the sampled oracle, or a serve daemon
 * failing one request — can recover.
 */
[[noreturn]] void
branchCapOverflow(const Instruction &inst, std::size_t max_branches)
{
    std::string where = gateKindName(inst.kind);
    if (!inst.label.empty())
        where += " '" + inst.label + "'";
    throw DeriveError(
        where,
        "measurement-branch enumeration exceeded its cap of " +
            std::to_string(max_branches) +
            " outcome histories at instruction " + where +
            ": exact mixture tracking is exponential in the "
            "nondeterministic measurements. Measure fewer qubits at "
            "once, assert on a narrower register, or switch the "
            "oracle to sampled mode (OracleMode::Sampled / serve "
            "\"oracle_mode\": \"sampled\"), which Monte-Carlo "
            "estimates the reference marginals instead of "
            "enumerating them.");
}

} // anonymous namespace

void
stepBranches(const Circuit &circ, const Instruction &inst,
             std::vector<ExecutionBranch> &branches,
             std::size_t max_branches)
{
    std::vector<ExecutionBranch> next;
    next.reserve(branches.size());

    for (ExecutionBranch &branch : branches) {
        if (!inst.condLabel.empty()) {
            const auto it = branch.measurements.find(inst.condLabel);
            fatal_if(it == branch.measurements.end(),
                     "conditional instruction references unmeasured "
                     "label '", inst.condLabel, "'");
            if (it->second != inst.condValue) {
                next.push_back(std::move(branch));
                continue;
            }
        }
        switch (inst.kind) {
          case GateKind::PrepZ: {
            // A reset is a measure-then-correct: split on the implicit
            // measurement, then X-correct each child to |bit> exactly
            // as StateVector::prepZ would.
            splitOnQubit(std::move(branch), inst.targets[0], nullptr,
                         0, static_cast<int>(inst.bit & 1), next);
            break;
          }
          case GateKind::Measure: {
            std::vector<ExecutionBranch> current;
            branch.measurements[inst.label] = 0; // overwrite semantics
            current.push_back(std::move(branch));
            for (std::size_t i = 0; i < inst.targets.size(); ++i) {
                std::vector<ExecutionBranch> expanded;
                for (ExecutionBranch &b : current) {
                    splitOnQubit(std::move(b), inst.targets[i],
                                 &inst.label,
                                 static_cast<unsigned>(i), -1,
                                 expanded);
                }
                // Enforce the cap per qubit, not after the full
                // register expansion: a wide measured register must
                // hit the designed fatal, not exhaust memory first.
                if (next.size() + expanded.size() > max_branches)
                    branchCapOverflow(inst, max_branches);
                current = std::move(expanded);
            }
            for (ExecutionBranch &b : current)
                next.push_back(std::move(b));
            break;
          }
          default:
            applyUnitaryInstruction(circ, inst, branch.state);
            next.push_back(std::move(branch));
            break;
        }
        if (next.size() > max_branches)
            branchCapOverflow(inst, max_branches);
    }
    branches = std::move(next);
}

} // namespace qsa::circuit
