/**
 * @file
 * Named quantum registers.
 *
 * The paper's assertions take a quantum *variable* — a named group of
 * qubits interpreted as a little-endian integer — not raw qubit
 * indices. Section 4.4 notes that "one of the trickiest aspects of
 * quantum programming is properly keeping track of how quantum
 * variables map to qubit assignments"; QubitRegister is the library's
 * answer, mirroring the quantum integer data types it credits to
 * ProjectQ/Q#/Quipper.
 */

#ifndef QSA_CIRCUIT_REGISTER_HH
#define QSA_CIRCUIT_REGISTER_HH

#include <string>
#include <vector>

namespace qsa::circuit
{

/**
 * A named, ordered list of qubit indices. qubit(0) is the least
 * significant bit of the register's integer value.
 */
class QubitRegister
{
  public:
    QubitRegister() = default;

    /** Construct from a name and explicit qubit list (LSB first). */
    QubitRegister(std::string name, std::vector<unsigned> qubits);

    /** Register name (used in reports and QASM output). */
    const std::string &name() const { return regName; }

    /** Number of qubits. */
    unsigned width() const { return qubitList.size(); }

    /** Qubit index holding bit i of the register value. */
    unsigned qubit(unsigned i) const;

    /** Shorthand for qubit(i), matching `reg[i]` in the listings. */
    unsigned operator[](unsigned i) const { return qubit(i); }

    /** All qubit indices, LSB first. */
    const std::vector<unsigned> &qubits() const { return qubitList; }

    /**
     * Sub-register view [first, first + count), keeping bit order;
     * useful for asserting on a slice of a variable.
     */
    QubitRegister slice(unsigned first, unsigned count,
                        const std::string &new_name = "") const;

    /**
     * Big-endian view of the same qubits (bit order reversed); models
     * the endianness helpers Q#/Quipper provide and lets tests exercise
     * "endian confusion" bugs (Section 4.3).
     */
    QubitRegister reversed(const std::string &new_name = "") const;

  private:
    std::string regName;
    std::vector<unsigned> qubitList;
};

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_REGISTER_HH
