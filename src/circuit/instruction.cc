/**
 * @file
 * Gate-kind helpers.
 */

#include "circuit/instruction.hh"

#include "common/logging.hh"

namespace qsa::circuit
{

std::string
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::PrepZ: return "prepz";
      case GateKind::H: return "h";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::Rx: return "rx";
      case GateKind::Ry: return "ry";
      case GateKind::Rz: return "rz";
      case GateKind::Phase: return "u1";
      case GateKind::Swap: return "swap";
      case GateKind::Unitary: return "unitary";
      case GateKind::Measure: return "measure";
      case GateKind::Breakpoint: return "breakpoint";
    }
    panic("unknown gate kind");
}

bool
gateKindHasAngle(GateKind kind)
{
    switch (kind) {
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::Phase:
        return true;
      default:
        return false;
    }
}

bool
gateKindInvertible(GateKind kind)
{
    switch (kind) {
      case GateKind::PrepZ:
      case GateKind::Measure:
      case GateKind::Breakpoint:
        return false;
      default:
        return true;
    }
}

} // namespace qsa::circuit
