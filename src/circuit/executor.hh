/**
 * @file
 * Circuit execution on the state-vector simulator.
 */

#ifndef QSA_CIRCUIT_EXECUTOR_HH
#define QSA_CIRCUIT_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <string>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace qsa::circuit
{

/** Outcome of one full program execution. */
struct ExecutionRecord
{
    /** Final quantum state after the last instruction. */
    sim::StateVector state;

    /** Measurement outcomes keyed by measure label. */
    std::map<std::string, std::uint64_t> measurements;

    explicit ExecutionRecord(unsigned num_qubits) : state(num_qubits) {}
};

/**
 * Execute every instruction of `circ` starting from |0...0>.
 *
 * @param circ program to execute
 * @param rng randomness source for measurements and resets
 */
ExecutionRecord runCircuit(const Circuit &circ, Rng &rng);

/**
 * Execute instructions onto an existing state (must have at least the
 * circuit's qubit count). Measurement outcomes with labels already in
 * `measurements` are overwritten.
 */
void runCircuitOn(const Circuit &circ, sim::StateVector &state,
                  std::map<std::string, std::uint64_t> &measurements,
                  Rng &rng);

/**
 * Execute a single instruction of `circ` onto an existing state —
 * the loop body of runCircuitOn, exposed so trajectory-stepping
 * callers (e.g. the sampled oracle, which needs the state at every
 * boundary of one sampled run) produce amplitudes bit-identical to a
 * full runCircuitOn pass. Honors the instruction's classical
 * condition against `measurements` and records Measure outcomes
 * into it.
 */
void stepInstruction(const Circuit &circ, const Instruction &inst,
                     sim::StateVector &state,
                     std::map<std::string, std::uint64_t> &measurements,
                     Rng &rng);

/**
 * Apply one deterministic (non-Measure, non-PrepZ) instruction to a
 * state, ignoring any classical condition — the single gate
 * interpreter shared by runCircuitOn and stepBranches so both paths
 * produce bit-identical amplitudes. Breakpoint markers are no-ops;
 * Measure/PrepZ panic (they need outcome handling).
 */
void applyUnitaryInstruction(const Circuit &circ,
                             const Instruction &inst,
                             sim::StateVector &state);

/**
 * Dense 2x2 matrix for a parameterised/fixed single-qubit gate kind
 * (panics for kinds without one). Shared by the executor dispatch and
 * the gate-fusion pass so both compose identical matrix entries.
 */
sim::Mat2 gateMatrix1q(const Instruction &inst);

/**
 * One branch of a measurement-resolved execution: the state and the
 * recorded outcomes *conditional on* one sequence of mid-circuit
 * measurement results, together with that sequence's probability.
 * The weights of a branch set always sum to ~1 (up to branches pruned
 * below stepBranches' probability floor).
 */
struct ExecutionBranch
{
    /** Probability of this branch's measurement-outcome sequence. */
    double weight = 1.0;

    /** Quantum state conditional on those outcomes. */
    sim::StateVector state;

    /** Recorded outcomes keyed by measure label. */
    std::map<std::string, std::uint64_t> measurements;
};

/**
 * Advance every branch through one instruction, exactly. Unitary
 * instructions evolve each branch in place; Measure and PrepZ split a
 * branch into one child per outcome with the exact outcome
 * probabilities (children below a ~1e-12 probability floor are
 * pruned, so floating-point dust does not spawn branches);
 * classically-conditioned instructions fire per branch against that
 * branch's own measurement record. This is the deterministic,
 * RNG-free counterpart of runCircuitOn: the weighted branch set is
 * the exact output mixture of the program, and each branch's state is
 * bit-identical to a sampled run that landed on the same outcomes.
 * For a measurement-free circuit the single branch's evolution is
 * bit-identical to runCircuitOn's.
 *
 * Throws qsa::DeriveError (naming the instruction) when the branch
 * count would exceed `max_branches` — the enumeration is exponential
 * in the number of nondeterministic measurements; callers bound it
 * and may fall back to sampled derivation.
 */
void stepBranches(const Circuit &circ, const Instruction &inst,
                  std::vector<ExecutionBranch> &branches,
                  std::size_t max_branches);

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_EXECUTOR_HH
