/**
 * @file
 * Circuit execution on the state-vector simulator.
 */

#ifndef QSA_CIRCUIT_EXECUTOR_HH
#define QSA_CIRCUIT_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <string>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace qsa::circuit
{

/** Outcome of one full program execution. */
struct ExecutionRecord
{
    /** Final quantum state after the last instruction. */
    sim::StateVector state;

    /** Measurement outcomes keyed by measure label. */
    std::map<std::string, std::uint64_t> measurements;

    explicit ExecutionRecord(unsigned num_qubits) : state(num_qubits) {}
};

/**
 * Execute every instruction of `circ` starting from |0...0>.
 *
 * @param circ program to execute
 * @param rng randomness source for measurements and resets
 */
ExecutionRecord runCircuit(const Circuit &circ, Rng &rng);

/**
 * Execute instructions onto an existing state (must have at least the
 * circuit's qubit count). Measurement outcomes with labels already in
 * `measurements` are overwritten.
 */
void runCircuitOn(const Circuit &circ, sim::StateVector &state,
                  std::map<std::string, std::uint64_t> &measurements,
                  Rng &rng);

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_EXECUTOR_HH
