/**
 * @file
 * OpenQASM 2.0 emission and parsing.
 *
 * The paper's toolflow compiles Scaffold programs with assertions into
 * "multiple versions of OpenQASM", one per breakpoint (Section 3.3).
 * This module keeps that interchange step: circuits serialise to an
 * OpenQASM-2.0 dialect and parse back.
 *
 * Dialect notes (all extensions are either standard-tool conventions or
 * comment pragmas, so stock OpenQASM consumers still read the files):
 *  - multi-controlled gates use repeated 'c' prefixes (ccx, ccu1, ...),
 *  - PrepZ is a `// qsa.prepz <qubit> <bit>` pragma (semantically
 *    reset + optional x, but kept exact for IR round-tripping),
 *  - breakpoints are `// qsa.breakpoint <label>` pragmas,
 *  - measurements use one classical register per measure label.
 * Dense Unitary instructions have no QASM form and fail emission.
 */

#ifndef QSA_CIRCUIT_QASM_HH
#define QSA_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace qsa::circuit
{

/** Serialise a circuit to the OpenQASM dialect described above. */
std::string toQasm(const Circuit &circ);

/**
 * Parse the OpenQASM dialect back into a circuit.
 *
 * Supports the subset toQasm emits plus numeric angle expressions with
 * +, -, *, /, parentheses, and the constant pi.
 */
Circuit fromQasm(const std::string &text);

/** Write a circuit to a QASM file (fatal on I/O failure). */
void saveQasmFile(const Circuit &circ, const std::string &path);

/** Read a circuit from a QASM file (fatal on I/O failure). */
Circuit loadQasmFile(const std::string &path);

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_QASM_HH
