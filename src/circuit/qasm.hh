/**
 * @file
 * OpenQASM 2.0 emission and parsing.
 *
 * The paper's toolflow compiles Scaffold programs with assertions into
 * "multiple versions of OpenQASM", one per breakpoint (Section 3.3).
 * This module keeps that interchange step: circuits serialise to an
 * OpenQASM-2.0 dialect and parse back.
 *
 * Dialect notes (all extensions are either standard-tool conventions or
 * comment pragmas, so stock OpenQASM consumers still read the files):
 *  - multi-controlled gates use repeated 'c' prefixes (ccx, ccu1, ...),
 *  - PrepZ is a `// qsa.prepz <qubit> <bit>` pragma (semantically
 *    reset + optional x, but kept exact for IR round-tripping),
 *  - breakpoints are `// qsa.breakpoint <label>` pragmas,
 *  - measurements use one classical register per measure label.
 * Dense Unitary instructions have no QASM form and fail emission.
 */

#ifndef QSA_CIRCUIT_QASM_HH
#define QSA_CIRCUIT_QASM_HH

#include <optional>
#include <string>

#include "circuit/circuit.hh"

namespace qsa::circuit
{

/** Serialise a circuit to the OpenQASM dialect described above. */
std::string toQasm(const Circuit &circ);

/**
 * A positioned QASM parse failure: where in the source text the
 * parser gave up (1-based line/column), the offending token when one
 * is identifiable, and what went wrong. Remote clients (qsa::serve)
 * get this verbatim in their error response, so every field must be
 * actionable without access to the server's logs.
 */
struct QasmError
{
    std::size_t line = 0;
    std::size_t column = 0;
    std::string token;
    std::string message;

    /** "line 3, column 7: unsupported QASM gate 'zz'". */
    std::string render() const;
};

/**
 * Parse the OpenQASM dialect back into a circuit.
 *
 * Supports the subset toQasm emits plus numeric angle expressions with
 * +, -, *, /, parentheses, and the constant pi. Fatal on malformed
 * input, reporting the position via QasmError::render().
 */
Circuit fromQasm(const std::string &text);

/**
 * Non-fatal form of fromQasm: returns the circuit, or std::nullopt
 * with `*error` (when non-null) describing the failure. The form
 * servers use — a malformed remote circuit must produce an error
 * response, not take the daemon down.
 */
std::optional<Circuit> tryFromQasm(const std::string &text,
                                   QasmError *error = nullptr);

/** Write a circuit to a QASM file (fatal on I/O failure). */
void saveQasmFile(const Circuit &circ, const std::string &path);

/** Read a circuit from a QASM file (fatal on I/O failure). */
Circuit loadQasmFile(const std::string &path);

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_QASM_HH
