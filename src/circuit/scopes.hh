/**
 * @file
 * ProjectQ-style structural scopes (Section 5.1, Table 4 right
 * column).
 *
 * The paper argues that language syntax for reversible computation
 * (`with Compute: ... Uncompute`) and controlled operations
 * (`with Control(q): ...`) exposes exactly the structure that guides
 * assertion placement: an entanglement assertion belongs where the
 * scratch registers are computed, and a product-state assertion
 * belongs after the automatic uncompute. These RAII scopes bring that
 * syntax to the C++ builder API, emit the mirrored/controlled code
 * automatically, and drop breakpoint markers at the boundaries so
 * assertions can be placed mechanically (autoPlaceScopeAssertions).
 */

#ifndef QSA_CIRCUIT_SCOPES_HH
#define QSA_CIRCUIT_SCOPES_HH

#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace qsa::circuit
{

/**
 * Compute/uncompute scope: everything appended between construction
 * and endCompute() is the *compute* block; everything after it is the
 * *action*; at destruction (or uncompute()) the adjoint of the
 * compute block is appended, restoring the scratch registers.
 *
 * With a label, breakpoints "<label>_computed" (after the compute
 * block) and "<label>_uncomputed" (after the mirror) are inserted.
 *
 * @code
 *   {
 *       ComputeScope scope(circ, "oracle");
 *       ... CNOTs computing work = f(q) ...
 *       scope.endCompute();
 *       ... phase flip on work ...
 *   } // work register uncomputed automatically here
 * @endcode
 */
class ComputeScope
{
  public:
    /** Open a scope on `circ`; optional label for breakpoints. */
    explicit ComputeScope(Circuit &circ, const std::string &label = "");

    ComputeScope(const ComputeScope &) = delete;
    ComputeScope &operator=(const ComputeScope &) = delete;

    /** Mark the end of the compute block (before the action). */
    void endCompute();

    /** Append the mirror now (idempotent; destructor calls it). */
    void uncompute();

    /** Uncomputes if not done already. */
    ~ComputeScope();

  private:
    Circuit &circ;
    std::string label;
    std::size_t computeBegin;
    std::size_t computeEnd;
    bool computeClosed = false;
    bool uncomputed = false;
};

/** Label suffix ComputeScope mints after the compute block. */
const std::string &scopeComputedSuffix();

/** Label suffix ComputeScope mints after the mirror. */
const std::string &scopeUncomputedSuffix();

/** A "<stem>_computed" / "<stem>_uncomputed" breakpoint pair. */
struct ScopeBreakpointPair
{
    /** The scope label the pair was minted from. */
    std::string stem;

    /** "<stem>_computed" breakpoint label. */
    std::string computed;

    /** "<stem>_uncomputed" breakpoint label. */
    std::string uncomputed;
};

/**
 * Every complete ComputeScope breakpoint pair in the circuit, in
 * program order of the "_computed" half. The one place the pairing rule
 * lives: mechanical assertion placement
 * (assertions::autoPlaceScopeAssertions) and scope-inherited
 * localization predicates (locate::scopeDerivedPredicates) both
 * resolve pairs through it.
 */
std::vector<ScopeBreakpointPair>
scopeBreakpointPairs(const Circuit &circ);

/**
 * Controlled-operations scope: everything appended while the scope is
 * alive is wrapped with the given control qubits at destruction —
 * ProjectQ's `with Control(eng, q):`.
 */
class ControlScope
{
  public:
    ControlScope(Circuit &circ, std::vector<unsigned> controls);

    ControlScope(const ControlScope &) = delete;
    ControlScope &operator=(const ControlScope &) = delete;

    /** Wrap now (idempotent; destructor calls it). */
    void close();

    ~ControlScope();

  private:
    Circuit &circ;
    std::vector<unsigned> controls;
    std::size_t begin;
    bool closed = false;
};

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_SCOPES_HH
