/**
 * @file
 * QubitRegister implementation.
 */

#include "circuit/register.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qsa::circuit
{

QubitRegister::QubitRegister(std::string name,
                             std::vector<unsigned> qubits)
    : regName(std::move(name)), qubitList(std::move(qubits))
{
    fatal_if(qubitList.empty(), "register '", regName,
             "' needs at least one qubit");
}

unsigned
QubitRegister::qubit(unsigned i) const
{
    panic_if(i >= width(), "register '", regName, "' index ", i,
             " out of range (width ", width(), ")");
    return qubitList[i];
}

QubitRegister
QubitRegister::slice(unsigned first, unsigned count,
                     const std::string &new_name) const
{
    panic_if(first + count > width(), "slice out of range on register '",
             regName, "'");
    std::vector<unsigned> sub(qubitList.begin() + first,
                              qubitList.begin() + first + count);
    return QubitRegister(new_name.empty() ? regName + "_slice" : new_name,
                         std::move(sub));
}

QubitRegister
QubitRegister::reversed(const std::string &new_name) const
{
    std::vector<unsigned> rev(qubitList.rbegin(), qubitList.rend());
    return QubitRegister(new_name.empty() ? regName + "_rev" : new_name,
                         std::move(rev));
}

} // namespace qsa::circuit
