/**
 * @file
 * Gate-fusion pass implementation.
 */

#include "circuit/fusion.hh"

#include <algorithm>
#include <utility>

#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::circuit
{

namespace
{

using sim::CMatrix;

/** An open fusion block: a pending dense unitary on <= 2 qubits. */
struct Block
{
    /** Qubits the block acts on, ascending. */
    std::vector<unsigned> qubits;

    /** Accumulated matrix; qubits[0] is the LSB of its index space. */
    CMatrix u;

    /** Original instructions absorbed so far. */
    std::size_t members = 0;

    /** The absorbed instruction when members == 1 (emitted verbatim). */
    Instruction original;
};

/**
 * Lift a matrix defined on qubit list `gq` (LSB first, any order) into
 * the index space of the superset list `bq` (ascending): identity on
 * the extra qubits, `g` on its own.
 */
CMatrix
liftInto(const CMatrix &g, const std::vector<unsigned> &gq,
         const std::vector<unsigned> &bq)
{
    std::vector<unsigned> pos(gq.size());
    std::uint64_t gmask = 0;
    for (std::size_t i = 0; i < gq.size(); ++i) {
        const auto it = std::find(bq.begin(), bq.end(), gq[i]);
        panic_if(it == bq.end(), "fusion lift target not in block");
        pos[i] = static_cast<unsigned>(it - bq.begin());
        gmask |= pow2(pos[i]);
    }

    const std::uint64_t dim = pow2(bq.size());
    CMatrix out(dim);
    for (std::uint64_t r = 0; r < dim; ++r) {
        for (std::uint64_t c = 0; c < dim; ++c) {
            if ((r & ~gmask) != (c & ~gmask))
                continue; // spectator bits must agree
            std::uint64_t gr = 0, gc = 0;
            for (std::size_t i = 0; i < pos.size(); ++i) {
                gr |= getBit(r, pos[i]) << i;
                gc |= getBit(c, pos[i]) << i;
            }
            out.at(r, c) = g.at(gr, gc);
        }
    }
    return out;
}

/** Controlled version of u with the control as the new highest bit. */
CMatrix
controlledOnHigh(const CMatrix &u)
{
    const std::size_t half = u.dim();
    CMatrix out(half * 2);
    for (std::size_t i = 0; i < half; ++i)
        out.at(i, i) = sim::Complex(1.0);
    for (std::size_t r = 0; r < half; ++r)
        for (std::size_t c = 0; c < half; ++c)
            out.at(half + r, half + c) = u.at(r, c);
    return out;
}

/** The 4x4 swap permutation (qubit-order independent). */
CMatrix
swapMatrix()
{
    CMatrix out(4);
    out.at(0, 0) = sim::Complex(1.0);
    out.at(1, 2) = sim::Complex(1.0);
    out.at(2, 1) = sim::Complex(1.0);
    out.at(3, 3) = sim::Complex(1.0);
    return out;
}

/** A fusible gate normalised to (ascending qubit list, dense matrix). */
struct Fusible
{
    std::vector<unsigned> qubits;
    CMatrix u;
};

/**
 * Classify one instruction. Fusible: unconditional unitaries spanning
 * <= 2 qubits (controls included). Everything else — Measure, PrepZ,
 * Breakpoint, conditioned gates, wider spans — is a barrier.
 */
bool
tryFusible(const Circuit &circ, const Instruction &inst, Fusible &out)
{
    if (!inst.condLabel.empty())
        return false;
    switch (inst.kind) {
      case GateKind::PrepZ:
      case GateKind::Measure:
      case GateKind::Breakpoint:
        return false;
      default:
        break;
    }
    if (inst.targets.size() + inst.controls.size() > 2)
        return false;

    // Local qubit order: targets LSB first, then controls above them.
    CMatrix local;
    if (inst.kind == GateKind::Swap)
        local = swapMatrix();
    else if (inst.kind == GateKind::Unitary)
        local = circ.matrix(inst.matrixId);
    else
        local = CMatrix::fromMat2(gateMatrix1q(inst));
    for (std::size_t c = 0; c < inst.controls.size(); ++c)
        local = controlledOnHigh(local);

    std::vector<unsigned> lq = inst.targets;
    lq.insert(lq.end(), inst.controls.begin(), inst.controls.end());
    out.qubits = lq;
    std::sort(out.qubits.begin(), out.qubits.end());
    out.u = liftInto(local, lq, out.qubits);
    return true;
}

/** Emit one block into `out`, accumulating eliminated-gate count. */
void
emitBlock(Circuit &out, const Circuit &in, const Block &block,
          std::size_t &eliminated)
{
    if (block.members == 1) {
        Instruction copy = block.original;
        if (copy.kind == GateKind::Unitary)
            copy.matrixId = out.addMatrix(in.matrix(copy.matrixId));
        out.append(copy);
        return;
    }
    eliminated += block.members - 1;
    Instruction fused;
    fused.kind = GateKind::Unitary;
    fused.targets = block.qubits;
    fused.matrixId = out.addMatrix(block.u);
    out.append(fused);
}

} // anonymous namespace

Circuit
fuseGates(const Circuit &in, FusionStats *stats)
{
    Circuit out = in.sliceRange(0, 0); // empty clone of the qubit space
    std::vector<Block> pending;
    std::size_t eliminated = 0;

    const auto flushAll = [&] {
        for (const Block &block : pending)
            emitBlock(out, in, block, eliminated);
        pending.clear();
    };

    for (const Instruction &inst : in.instructions()) {
        Fusible f;
        if (!tryFusible(in, inst, f)) {
            flushAll();
            Instruction copy = inst;
            if (copy.kind == GateKind::Unitary)
                copy.matrixId = out.addMatrix(in.matrix(copy.matrixId));
            out.append(copy);
            continue;
        }

        // Pending blocks are pairwise disjoint; collect the ones this
        // gate touches and the union of qubits a merge would span.
        std::vector<std::size_t> hits;
        std::vector<unsigned> span = f.qubits;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            const Block &b = pending[i];
            const bool overlap = std::any_of(
                b.qubits.begin(), b.qubits.end(), [&](unsigned q) {
                    return std::find(f.qubits.begin(), f.qubits.end(),
                                     q) != f.qubits.end();
                });
            if (!overlap)
                continue;
            hits.push_back(i);
            for (unsigned q : b.qubits) {
                if (std::find(span.begin(), span.end(), q) == span.end())
                    span.push_back(q);
            }
        }
        std::sort(span.begin(), span.end());

        if (hits.empty()) {
            Block fresh;
            fresh.qubits = f.qubits;
            fresh.u = f.u;
            fresh.members = 1;
            fresh.original = inst;
            pending.push_back(std::move(fresh));
            continue;
        }

        if (span.size() <= 2) {
            // Merge the touched blocks (disjoint, so program order
            // among them is a commuting reorder) and the new gate.
            Block merged;
            merged.qubits = span;
            merged.u = CMatrix::identity(pow2(span.size()));
            for (std::size_t i : hits) {
                const Block &b = pending[i];
                merged.u = liftInto(b.u, b.qubits, span).mul(merged.u);
                merged.members += b.members;
            }
            merged.u = liftInto(f.u, f.qubits, span).mul(merged.u);
            merged.members += 1;
            pending[hits.front()] = std::move(merged);
            for (std::size_t i = hits.size(); i-- > 1;)
                pending.erase(pending.begin() +
                              static_cast<std::ptrdiff_t>(hits[i]));
        } else {
            // Growing past two qubits: retire what the gate touches
            // and open a fresh block for it.
            for (std::size_t i : hits)
                emitBlock(out, in, pending[i], eliminated);
            for (std::size_t i = hits.size(); i-- > 0;)
                pending.erase(pending.begin() +
                              static_cast<std::ptrdiff_t>(hits[i]));
            Block fresh;
            fresh.qubits = f.qubits;
            fresh.u = f.u;
            fresh.members = 1;
            fresh.original = inst;
            pending.push_back(std::move(fresh));
        }
    }
    flushAll();

    if (stats != nullptr) {
        stats->fusedGates = eliminated;
        stats->emitted = out.size();
    }
    return out;
}

} // namespace qsa::circuit
