/**
 * @file
 * OpenQASM 2.0 dialect emitter and recursive-descent parser.
 *
 * The parser reports failures as positioned QasmError values (line,
 * column, offending token) through tryFromQasm and never calls
 * fatal() on malformed *input* — qsa::serve hands it bytes from
 * remote clients, and a bad circuit must come back as an error
 * response, not kill the daemon. Internally errors propagate as a
 * private exception; fromQasm converts them to the classic fatal.
 *
 * The same robustness rule covers the Circuit building calls: every
 * precondition Circuit::append/measureQubits/breakpoint would fatal
 * on (range, duplicate operands, arity, duplicate labels) is checked
 * here first and reported as a parse error with a position.
 */

#include "circuit/qasm.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace qsa::circuit
{

namespace
{

/** Format an angle with full round-trip precision. */
std::string
fmtAngle(double angle)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", angle);
    return buf;
}

/** Map a qubit index to "reg[i]" under the circuit's register layout. */
std::string
qubitRef(const Circuit &circ, unsigned q)
{
    unsigned base = 0;
    for (const auto &r : circ.registers()) {
        // Registers are allocated consecutively by construction.
        if (q >= base && q < base + r.width())
            return r.name() + "[" + std::to_string(q - base) + "]";
        base += r.width();
    }
    return "q[" + std::to_string(q) + "]";
}

/** True when declared registers exactly tile the qubit space. */
bool
registersCoverSpace(const Circuit &circ)
{
    unsigned base = 0;
    for (const auto &r : circ.registers())
        base += r.width();
    return base == circ.numQubits() && base > 0;
}

/** Sanitise a measurement label into a classical register name. */
std::string
cregName(const std::string &label)
{
    std::string out = "m_";
    for (char ch : label)
        out += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
    return out;
}

} // anonymous namespace

std::string
toQasm(const Circuit &circ)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";

    const bool named = registersCoverSpace(circ);
    if (named) {
        for (const auto &r : circ.registers())
            os << "qreg " << r.name() << "[" << r.width() << "];\n";
    } else {
        os << "qreg q[" << circ.numQubits() << "];\n";
    }

    // Declare one classical register per measurement label.
    for (const auto &inst : circ.instructions()) {
        if (inst.kind == GateKind::Measure) {
            os << "creg " << cregName(inst.label) << "["
               << inst.targets.size() << "];\n";
        }
    }

    for (const auto &inst : circ.instructions()) {
        switch (inst.kind) {
          case GateKind::PrepZ:
            os << "// qsa.prepz " << inst.targets[0] << " " << inst.bit
               << "\n";
            continue;
          case GateKind::Breakpoint:
            os << "// qsa.breakpoint " << inst.label << "\n";
            continue;
          case GateKind::Measure:
            for (std::size_t i = 0; i < inst.targets.size(); ++i) {
                os << "measure " << qubitRef(circ, inst.targets[i])
                   << " -> " << cregName(inst.label) << "[" << i
                   << "];\n";
            }
            continue;
          case GateKind::Unitary:
            fatal("dense unitary instructions have no QASM form");
          default:
            break;
        }

        if (!inst.condLabel.empty()) {
            os << "if(" << cregName(inst.condLabel) << "=="
               << inst.condValue << ") ";
        }
        std::string name(inst.controls.size(), 'c');
        name += gateKindName(inst.kind);
        os << name;
        if (gateKindHasAngle(inst.kind))
            os << "(" << fmtAngle(inst.angle) << ")";
        os << " ";

        bool first = true;
        for (unsigned c : inst.controls) {
            os << (first ? "" : ",") << qubitRef(circ, c);
            first = false;
        }
        for (unsigned t : inst.targets) {
            os << (first ? "" : ",") << qubitRef(circ, t);
            first = false;
        }
        os << ";\n";
    }
    return os.str();
}

std::string
QasmError::render() const
{
    std::ostringstream os;
    os << "line " << line << ", column " << column << ": " << message;
    if (!token.empty())
        os << " '" << token << "'";
    return os.str();
}

namespace
{

/** Internal error transport; tryFromQasm converts to QasmError. */
struct ParseFailure
{
    QasmError err;
};

/** Throw a (not yet positioned) parse failure. */
[[noreturn]] void
parseThrow(std::string token, std::string message)
{
    ParseFailure failure;
    failure.err.token = std::move(token);
    failure.err.message = std::move(message);
    throw failure;
}

/** Strip surrounding whitespace. */
std::string
trimmed(std::string s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front())))
        s.erase(s.begin());
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    return s;
}

/** Parse a decimal unsigned, rejecting junk and overflow. */
std::uint64_t
parseUnsigned(const std::string &text, const char *what)
{
    const std::string digits = trimmed(text);
    if (digits.empty() || digits.size() > 18)
        parseThrow(digits, std::string("bad ") + what);
    for (char ch : digits)
        if (!std::isdigit(static_cast<unsigned char>(ch)))
            parseThrow(digits, std::string("bad ") + what);
    return std::strtoull(digits.c_str(), nullptr, 10);
}

/**
 * Minimal arithmetic expression parser for angle parameters:
 * expr := term (('+'|'-') term)*, term := factor (('*'|'/') factor)*,
 * factor := number | 'pi' | '-' factor | '(' expr ')'.
 */
class ExprParser
{
  public:
    explicit ExprParser(std::string text) : s(std::move(text)), pos(0)
    {
    }

    double
    parse()
    {
        const double v = expr();
        skipSpace();
        if (pos != s.size())
            parseThrow(s, "trailing characters in angle");
        if (!std::isfinite(v))
            parseThrow(s, "non-finite angle");
        return v;
    }

  private:
    const std::string s;
    std::size_t pos;

    void
    skipSpace()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    consume(char ch)
    {
        skipSpace();
        if (pos < s.size() && s[pos] == ch) {
            ++pos;
            return true;
        }
        return false;
    }

    double
    expr()
    {
        double v = term();
        while (true) {
            if (consume('+'))
                v += term();
            else if (consume('-'))
                v -= term();
            else
                return v;
        }
    }

    double
    term()
    {
        double v = factor();
        while (true) {
            if (consume('*'))
                v *= factor();
            else if (consume('/'))
                v /= factor();
            else
                return v;
        }
    }

    double
    factor()
    {
        skipSpace();
        if (consume('-'))
            return -factor();
        if (consume('(')) {
            const double v = expr();
            if (!consume(')'))
                parseThrow(s, "unbalanced parens in angle");
            return v;
        }
        if (s.compare(pos, 2, "pi") == 0) {
            pos += 2;
            return M_PI;
        }
        const char *begin = s.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin || !std::isfinite(v))
            parseThrow(s, "bad number in angle");
        pos += static_cast<std::size_t>(end - begin);
        return v;
    }
};

/** Split "a,b,c" into trimmed pieces. */
std::vector<std::string>
splitList(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : text) {
        if (ch == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    out.push_back(cur);
    for (auto &piece : out)
        piece = trimmed(piece);
    return out;
}

/** Parsed "name[index]" reference. */
struct RegRef
{
    std::string name;
    unsigned index;
};

RegRef
parseRef(const std::string &text)
{
    const auto lb = text.find('[');
    const auto rb = text.find(']');
    if (lb == std::string::npos || rb == std::string::npos || rb < lb)
        parseThrow(trimmed(text), "bad register reference");
    RegRef ref;
    ref.name = trimmed(text.substr(0, lb));
    const std::uint64_t index = parseUnsigned(
        text.substr(lb + 1, rb - lb - 1), "register index");
    if (index > 0xFFFFFFFFULL)
        parseThrow(trimmed(text), "register index out of range");
    ref.index = static_cast<unsigned>(index);
    return ref;
}

/**
 * Base gate kind lookup; returns false for unknown names. No base
 * mnemonic starts with 'c', so control prefixes strip unambiguously.
 */
bool
tryKindFromName(const std::string &name, GateKind &kind)
{
    if (name == "h") { kind = GateKind::H; return true; }
    if (name == "x") { kind = GateKind::X; return true; }
    if (name == "y") { kind = GateKind::Y; return true; }
    if (name == "z") { kind = GateKind::Z; return true; }
    if (name == "s") { kind = GateKind::S; return true; }
    if (name == "sdg") { kind = GateKind::Sdg; return true; }
    if (name == "t") { kind = GateKind::T; return true; }
    if (name == "tdg") { kind = GateKind::Tdg; return true; }
    if (name == "rx") { kind = GateKind::Rx; return true; }
    if (name == "ry") { kind = GateKind::Ry; return true; }
    if (name == "rz") { kind = GateKind::Rz; return true; }
    if (name == "u1") { kind = GateKind::Phase; return true; }
    if (name == "swap") { kind = GateKind::Swap; return true; }
    return false;
}

/** See file comment: the positioned, fatal-free QASM parser. */
class QasmParser
{
  public:
    explicit QasmParser(const std::string &source) : src(source) {}

    Circuit
    parse()
    {
        std::istringstream is(src);
        std::string line;
        while (std::getline(is, line)) {
            ++lineNo;
            currentLine = line;
            try {
                parseLine(line);
            } catch (ParseFailure &f) {
                position(f.err);
                throw;
            } catch (const std::exception &e) {
                ParseFailure f;
                f.err.message = e.what();
                position(f.err);
                throw f;
            }
        }
        try {
            flushMeasures();
        } catch (ParseFailure &f) {
            position(f.err);
            throw;
        }
        return std::move(circ);
    }

  private:
    const std::string &src;
    Circuit circ;

    /** Register name -> (qubit offset, width). */
    std::map<std::string, std::pair<unsigned, unsigned>> regLayout;

    /** Classical register name -> measurement label. */
    std::map<std::string, std::string> cregLabel;

    /**
     * Pending measurement targets per label (rebuilt into one Measure
     * instruction per label, in first-seen order).
     */
    std::map<std::string, std::vector<std::pair<unsigned, unsigned>>>
        pendingMeasures;
    std::vector<std::string> pendingOrder;

    /** Labels some measure statement has already recorded into. */
    std::set<std::string> measuredLabels;

    std::size_t lineNo = 0;
    std::string currentLine;

    /** Fill in line/column on a failure raised while parsing. */
    void
    position(QasmError &err) const
    {
        if (err.line != 0)
            return;
        err.line = lineNo == 0 ? 1 : lineNo;
        std::size_t col = currentLine.find_first_not_of(" \t");
        col = (col == std::string::npos) ? 0 : col;
        if (!err.token.empty()) {
            const auto at = currentLine.find(err.token);
            if (at != std::string::npos)
                col = at;
        }
        err.column = col + 1;
    }

    unsigned
    resolve(const std::string &ref_text)
    {
        const RegRef ref = parseRef(ref_text);
        const auto it = regLayout.find(ref.name);
        if (it == regLayout.end())
            parseThrow(ref.name, "unknown register");
        if (ref.index >= it->second.second)
            parseThrow(trimmed(ref_text),
                       "qubit index out of range for register '" +
                           ref.name + "'");
        return it->second.first + ref.index;
    }

    void
    flushMeasures()
    {
        for (const auto &label : pendingOrder) {
            const auto &targets = pendingMeasures.at(label);
            std::vector<unsigned> qubits(targets.size());
            std::set<unsigned> seen_bits, seen_qubits;
            for (const auto &[cbit, qubit] : targets) {
                if (cbit >= qubits.size())
                    parseThrow(label, "classical bits of measurement "
                                      "group are not contiguous for "
                                      "label");
                if (!seen_bits.insert(cbit).second)
                    parseThrow(label, "duplicate classical bit in "
                                      "measurement group for label");
                if (!seen_qubits.insert(qubit).second)
                    parseThrow(label, "duplicate measured qubit in "
                                      "measurement group for label");
                qubits[cbit] = qubit;
            }
            circ.measureQubits(qubits, label);
        }
        pendingMeasures.clear();
        pendingOrder.clear();
    }

    void
    parseLine(std::string line)
    {
        // Pragmas first; then strip comments.
        if (line.rfind("// qsa.prepz", 0) == 0) {
            flushMeasures();
            std::istringstream ls(line.substr(12));
            unsigned qubit = 0, bit = 0;
            ls >> qubit >> bit;
            if (!ls)
                parseThrow(trimmed(line),
                           "qsa.prepz pragma needs '<qubit> <bit>'");
            if (qubit >= circ.numQubits())
                parseThrow(std::to_string(qubit),
                           "prepz qubit out of range");
            if (bit > 1)
                parseThrow(std::to_string(bit),
                           "prepz bit must be 0 or 1");
            circ.prepZ(qubit, bit);
            return;
        }
        if (line.rfind("// qsa.breakpoint", 0) == 0) {
            flushMeasures();
            std::istringstream ls(line.substr(17));
            std::string label;
            ls >> label;
            if (label.empty())
                parseThrow(trimmed(line),
                           "qsa.breakpoint pragma needs a label");
            if (circ.hasBreakpoint(label))
                parseThrow(label, "duplicate breakpoint label");
            circ.breakpoint(label);
            return;
        }
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);

        // Statements end with ';'.
        std::string stmt;
        for (char ch : line) {
            if (ch != ';') {
                stmt += ch;
                continue;
            }
            handleStatement(trimmed(stmt));
            stmt.clear();
        }
        if (!trimmed(stmt).empty())
            parseThrow(trimmed(stmt), "statement missing ';'");
    }

    void
    handleStatement(const std::string &stmt_in)
    {
        std::string stmt = stmt_in;
        if (stmt.empty() || stmt.rfind("OPENQASM", 0) == 0 ||
            stmt.rfind("include", 0) == 0 ||
            stmt.rfind("barrier", 0) == 0)
            return;

        // Adjacent measure lines group into one Measure instruction;
        // anything else flushes the group so program order is
        // preserved.
        if (stmt.rfind("measure", 0) != 0)
            flushMeasures();

        if (stmt.rfind("qreg", 0) == 0) {
            const RegRef ref = parseRef(stmt.substr(5));
            if (ref.index == 0)
                parseThrow(ref.name,
                           "register must have width > 0");
            if (regLayout.count(ref.name))
                parseThrow(ref.name, "duplicate register name");
            regLayout[ref.name] = {circ.numQubits(), ref.index};
            circ.addRegister(ref.name, ref.index);
            return;
        }
        if (stmt.rfind("creg", 0) == 0) {
            const RegRef ref = parseRef(stmt.substr(5));
            std::string label = ref.name;
            if (label.rfind("m_", 0) == 0)
                label = label.substr(2);
            cregLabel[ref.name] = label;
            return;
        }
        if (stmt.rfind("measure", 0) == 0) {
            const auto arrow = stmt.find("->");
            if (arrow == std::string::npos)
                parseThrow(stmt, "measure without '->'");
            const unsigned qubit = resolve(stmt.substr(8, arrow - 8));
            const RegRef cref = parseRef(stmt.substr(arrow + 2));
            const auto it = cregLabel.find(cref.name);
            if (it == cregLabel.end())
                parseThrow(cref.name, "unknown creg");
            if (!pendingMeasures.count(it->second))
                pendingOrder.push_back(it->second);
            pendingMeasures[it->second].emplace_back(cref.index,
                                                     qubit);
            measuredLabels.insert(it->second);
            return;
        }

        // Optional classical condition prefix "if(creg==v)".
        std::string cond_label;
        std::uint64_t cond_value = 0;
        if (stmt.rfind("if(", 0) == 0) {
            const auto eq = stmt.find("==");
            const auto close = stmt.find(')');
            if (eq == std::string::npos ||
                close == std::string::npos || close < eq)
                parseThrow(stmt, "malformed if condition");
            const std::string creg = stmt.substr(3, eq - 3);
            const auto lit = cregLabel.find(creg);
            if (lit == cregLabel.end())
                parseThrow(creg, "unknown creg in condition");
            if (!measuredLabels.count(lit->second))
                parseThrow(creg, "condition reads creg before any "
                                 "measurement into it");
            cond_label = lit->second;
            cond_value = parseUnsigned(
                stmt.substr(eq + 2, close - eq - 2),
                "condition value");
            stmt = trimmed(stmt.substr(close + 1));
        }

        // Gate statement: name[(params)] operands.
        std::size_t name_end = 0;
        while (name_end < stmt.size() &&
               (std::isalnum(
                    static_cast<unsigned char>(stmt[name_end])) ||
                stmt[name_end] == '_'))
            ++name_end;
        const std::string name = stmt.substr(0, name_end);
        if (name.empty())
            parseThrow(stmt, "expected a gate name");
        std::size_t rest = name_end;

        double angle = 0.0;
        bool has_angle = false;
        if (rest < stmt.size() && stmt[rest] == '(') {
            const auto close = stmt.find(')', rest);
            if (close == std::string::npos)
                parseThrow(name, "unbalanced parameter list for");
            ExprParser ep(stmt.substr(rest + 1, close - rest - 1));
            angle = ep.parse();
            has_angle = true;
            rest = close + 1;
        }

        // Strip 'c' control prefixes: no base mnemonic starts with
        // 'c', so the first non-'c' position starts the base name
        // ("ccu1" -> 2 controls, "u1").
        unsigned num_controls = 0;
        while (num_controls < name.size() && name[num_controls] == 'c')
            ++num_controls;

        GateKind kind;
        std::string base = name.substr(num_controls);
        if (!tryKindFromName(base, kind)) {
            // Names like "cswap" keep a leading 'c' in the base only
            // if the full string is itself a gate; retry with fewer
            // stripped prefixes before giving up.
            bool found = false;
            for (unsigned k = num_controls; k-- > 0;) {
                base = name.substr(k);
                if (tryKindFromName(base, kind)) {
                    num_controls = k;
                    found = true;
                    break;
                }
            }
            if (!found)
                parseThrow(name, "unsupported QASM gate");
        }
        if (has_angle && !gateKindHasAngle(kind))
            parseThrow(name, "gate takes no parameter:");

        const auto operands = splitList(stmt.substr(rest), ',');
        const std::size_t expected_targets =
            kind == GateKind::Swap ? 2 : 1;
        if (operands.size() != num_controls + expected_targets)
            parseThrow(name,
                       "gate expects " +
                           std::to_string(num_controls +
                                          expected_targets) +
                           " operand(s), got " +
                           std::to_string(operands.size()) +
                           ", for");

        Instruction inst;
        inst.kind = kind;
        inst.angle = angle;
        inst.condLabel = cond_label;
        inst.condValue = cond_value;
        std::set<unsigned> seen;
        for (std::size_t i = 0; i < operands.size(); ++i) {
            const unsigned q = resolve(operands[i]);
            if (!seen.insert(q).second)
                parseThrow(operands[i], "duplicate qubit operand");
            if (i < num_controls)
                inst.controls.push_back(q);
            else
                inst.targets.push_back(q);
        }
        circ.append(inst);
    }
};

} // anonymous namespace

Circuit
fromQasm(const std::string &text)
{
    QasmError error;
    auto circ = tryFromQasm(text, &error);
    fatal_if(!circ, "QASM parse error: ", error.render());
    return std::move(*circ);
}

std::optional<Circuit>
tryFromQasm(const std::string &text, QasmError *error)
{
    QasmParser parser(text);
    try {
        return parser.parse();
    } catch (const ParseFailure &failure) {
        if (error != nullptr)
            *error = failure.err;
        return std::nullopt;
    }
}

void
saveQasmFile(const Circuit &circ, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open '", path, "' for writing");
    out << toQasm(circ);
    fatal_if(!out, "write to '", path, "' failed");
}

Circuit
loadQasmFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open '", path, "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromQasm(buffer.str());
}

} // namespace qsa::circuit
