/**
 * @file
 * OpenQASM 2.0 dialect emitter and recursive-descent parser.
 */

#include "circuit/qasm.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace qsa::circuit
{

namespace
{

/** Format an angle with full round-trip precision. */
std::string
fmtAngle(double angle)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", angle);
    return buf;
}

/** Map a qubit index to "reg[i]" under the circuit's register layout. */
std::string
qubitRef(const Circuit &circ, unsigned q)
{
    unsigned base = 0;
    for (const auto &r : circ.registers()) {
        // Registers are allocated consecutively by construction.
        if (q >= base && q < base + r.width())
            return r.name() + "[" + std::to_string(q - base) + "]";
        base += r.width();
    }
    return "q[" + std::to_string(q) + "]";
}

/** True when declared registers exactly tile the qubit space. */
bool
registersCoverSpace(const Circuit &circ)
{
    unsigned base = 0;
    for (const auto &r : circ.registers())
        base += r.width();
    return base == circ.numQubits() && base > 0;
}

/** Sanitise a measurement label into a classical register name. */
std::string
cregName(const std::string &label)
{
    std::string out = "m_";
    for (char ch : label)
        out += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
    return out;
}

} // anonymous namespace

std::string
toQasm(const Circuit &circ)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";

    const bool named = registersCoverSpace(circ);
    if (named) {
        for (const auto &r : circ.registers())
            os << "qreg " << r.name() << "[" << r.width() << "];\n";
    } else {
        os << "qreg q[" << circ.numQubits() << "];\n";
    }

    // Declare one classical register per measurement label.
    for (const auto &inst : circ.instructions()) {
        if (inst.kind == GateKind::Measure) {
            os << "creg " << cregName(inst.label) << "["
               << inst.targets.size() << "];\n";
        }
    }

    for (const auto &inst : circ.instructions()) {
        switch (inst.kind) {
          case GateKind::PrepZ:
            os << "// qsa.prepz " << inst.targets[0] << " " << inst.bit
               << "\n";
            continue;
          case GateKind::Breakpoint:
            os << "// qsa.breakpoint " << inst.label << "\n";
            continue;
          case GateKind::Measure:
            for (std::size_t i = 0; i < inst.targets.size(); ++i) {
                os << "measure " << qubitRef(circ, inst.targets[i])
                   << " -> " << cregName(inst.label) << "[" << i
                   << "];\n";
            }
            continue;
          case GateKind::Unitary:
            fatal("dense unitary instructions have no QASM form");
          default:
            break;
        }

        if (!inst.condLabel.empty()) {
            os << "if(" << cregName(inst.condLabel) << "=="
               << inst.condValue << ") ";
        }
        std::string name(inst.controls.size(), 'c');
        name += gateKindName(inst.kind);
        os << name;
        if (gateKindHasAngle(inst.kind))
            os << "(" << fmtAngle(inst.angle) << ")";
        os << " ";

        bool first = true;
        for (unsigned c : inst.controls) {
            os << (first ? "" : ",") << qubitRef(circ, c);
            first = false;
        }
        for (unsigned t : inst.targets) {
            os << (first ? "" : ",") << qubitRef(circ, t);
            first = false;
        }
        os << ";\n";
    }
    return os.str();
}

namespace
{

/**
 * Minimal arithmetic expression parser for angle parameters:
 * expr := term (('+'|'-') term)*, term := factor (('*'|'/') factor)*,
 * factor := number | 'pi' | '-' factor | '(' expr ')'.
 */
class ExprParser
{
  public:
    explicit ExprParser(std::string text) : s(std::move(text)), pos(0)
    {
    }

    double
    parse()
    {
        const double v = expr();
        skipSpace();
        fatal_if(pos != s.size(), "trailing characters in angle '", s,
                 "'");
        return v;
    }

  private:
    const std::string s;
    std::size_t pos;

    void
    skipSpace()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    consume(char ch)
    {
        skipSpace();
        if (pos < s.size() && s[pos] == ch) {
            ++pos;
            return true;
        }
        return false;
    }

    double
    expr()
    {
        double v = term();
        while (true) {
            if (consume('+'))
                v += term();
            else if (consume('-'))
                v -= term();
            else
                return v;
        }
    }

    double
    term()
    {
        double v = factor();
        while (true) {
            if (consume('*'))
                v *= factor();
            else if (consume('/'))
                v /= factor();
            else
                return v;
        }
    }

    double
    factor()
    {
        skipSpace();
        if (consume('-'))
            return -factor();
        if (consume('(')) {
            const double v = expr();
            fatal_if(!consume(')'), "unbalanced parens in angle '", s,
                     "'");
            return v;
        }
        if (s.compare(pos, 2, "pi") == 0) {
            pos += 2;
            return M_PI;
        }
        std::size_t used = 0;
        const double v = std::stod(s.substr(pos), &used);
        fatal_if(used == 0, "bad number in angle '", s, "'");
        pos += used;
        return v;
    }
};

/** Split "a,b,c" into trimmed pieces. */
std::vector<std::string>
splitList(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : text) {
        if (ch == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    out.push_back(cur);
    for (auto &piece : out) {
        while (!piece.empty() && std::isspace(
                   static_cast<unsigned char>(piece.front())))
            piece.erase(piece.begin());
        while (!piece.empty() && std::isspace(
                   static_cast<unsigned char>(piece.back())))
            piece.pop_back();
    }
    return out;
}

/** Parsed "name[index]" reference. */
struct RegRef
{
    std::string name;
    unsigned index;
};

RegRef
parseRef(const std::string &text)
{
    const auto lb = text.find('[');
    const auto rb = text.find(']');
    fatal_if(lb == std::string::npos || rb == std::string::npos ||
                 rb < lb,
             "bad qubit reference '", text, "'");
    RegRef ref;
    ref.name = text.substr(0, lb);
    while (!ref.name.empty() && std::isspace(
               static_cast<unsigned char>(ref.name.front())))
        ref.name.erase(ref.name.begin());
    while (!ref.name.empty() && std::isspace(
               static_cast<unsigned char>(ref.name.back())))
        ref.name.pop_back();
    ref.index = std::stoul(text.substr(lb + 1, rb - lb - 1));
    return ref;
}

/**
 * Base gate kind lookup; returns false for unknown names. No base
 * mnemonic starts with 'c', so control prefixes strip unambiguously.
 */
bool
tryKindFromName(const std::string &name, GateKind &kind)
{
    if (name == "h") { kind = GateKind::H; return true; }
    if (name == "x") { kind = GateKind::X; return true; }
    if (name == "y") { kind = GateKind::Y; return true; }
    if (name == "z") { kind = GateKind::Z; return true; }
    if (name == "s") { kind = GateKind::S; return true; }
    if (name == "sdg") { kind = GateKind::Sdg; return true; }
    if (name == "t") { kind = GateKind::T; return true; }
    if (name == "tdg") { kind = GateKind::Tdg; return true; }
    if (name == "rx") { kind = GateKind::Rx; return true; }
    if (name == "ry") { kind = GateKind::Ry; return true; }
    if (name == "rz") { kind = GateKind::Rz; return true; }
    if (name == "u1") { kind = GateKind::Phase; return true; }
    if (name == "swap") { kind = GateKind::Swap; return true; }
    return false;
}

} // anonymous namespace

Circuit
fromQasm(const std::string &text)
{
    Circuit circ;
    std::map<std::string, unsigned> reg_base; // register name -> offset
    std::map<std::string, std::string> creg_label; // creg -> label
    // Pending measurement targets per label (rebuilt into one Measure
    // instruction per label, in first-seen order).
    std::map<std::string, std::vector<std::pair<unsigned, unsigned>>>
        pending_measures;
    std::vector<std::string> pending_order;

    auto resolve = [&](const std::string &ref_text) -> unsigned {
        const RegRef ref = parseRef(ref_text);
        auto it = reg_base.find(ref.name);
        fatal_if(it == reg_base.end(), "unknown register '", ref.name,
                 "'");
        return it->second + ref.index;
    };

    auto flush_measures = [&]() {
        for (const auto &label : pending_order) {
            const auto &targets = pending_measures.at(label);
            std::vector<unsigned> qubits(targets.size());
            for (const auto &[cbit, qubit] : targets) {
                fatal_if(cbit >= qubits.size(),
                         "classical bit out of range in measure");
                qubits[cbit] = qubit;
            }
            circ.measureQubits(qubits, label);
        }
        pending_measures.clear();
        pending_order.clear();
    };

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        // Pragmas first; then strip comments.
        if (line.rfind("// qsa.prepz", 0) == 0) {
            flush_measures();
            std::istringstream ls(line.substr(12));
            unsigned qubit = 0, bit = 0;
            ls >> qubit >> bit;
            circ.prepZ(qubit, bit);
            continue;
        }
        if (line.rfind("// qsa.breakpoint", 0) == 0) {
            flush_measures();
            std::istringstream ls(line.substr(17));
            std::string label;
            ls >> label;
            circ.breakpoint(label);
            continue;
        }
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);

        // Statements end with ';'.
        std::string stmt;
        for (char ch : line) {
            if (ch != ';') {
                stmt += ch;
                continue;
            }
            // Trim.
            while (!stmt.empty() && std::isspace(
                       static_cast<unsigned char>(stmt.front())))
                stmt.erase(stmt.begin());
            while (!stmt.empty() && std::isspace(
                       static_cast<unsigned char>(stmt.back())))
                stmt.pop_back();
            if (stmt.empty() || stmt.rfind("OPENQASM", 0) == 0 ||
                stmt.rfind("include", 0) == 0 ||
                stmt.rfind("barrier", 0) == 0) {
                stmt.clear();
                continue;
            }

            // Adjacent measure lines group into one Measure
            // instruction; anything else flushes the group so program
            // order is preserved.
            if (stmt.rfind("measure", 0) != 0)
                flush_measures();

            if (stmt.rfind("qreg", 0) == 0) {
                const RegRef ref = parseRef(stmt.substr(5));
                reg_base[ref.name] = circ.numQubits();
                circ.addRegister(ref.name, ref.index);
                stmt.clear();
                continue;
            }
            if (stmt.rfind("creg", 0) == 0) {
                const RegRef ref = parseRef(stmt.substr(5));
                std::string label = ref.name;
                if (label.rfind("m_", 0) == 0)
                    label = label.substr(2);
                creg_label[ref.name] = label;
                stmt.clear();
                continue;
            }
            if (stmt.rfind("measure", 0) == 0) {
                const auto arrow = stmt.find("->");
                fatal_if(arrow == std::string::npos,
                         "measure without '->'");
                const unsigned qubit =
                    resolve(stmt.substr(8, arrow - 8));
                const RegRef cref =
                    parseRef(stmt.substr(arrow + 2));
                auto it = creg_label.find(cref.name);
                fatal_if(it == creg_label.end(), "unknown creg '",
                         cref.name, "'");
                if (!pending_measures.count(it->second))
                    pending_order.push_back(it->second);
                pending_measures[it->second].emplace_back(cref.index,
                                                          qubit);
                stmt.clear();
                continue;
            }

            // Optional classical condition prefix "if(creg==v)".
            std::string cond_label;
            std::uint64_t cond_value = 0;
            if (stmt.rfind("if(", 0) == 0) {
                const auto eq = stmt.find("==");
                const auto close = stmt.find(')');
                fatal_if(eq == std::string::npos ||
                             close == std::string::npos || close < eq,
                         "malformed if condition");
                std::string creg = stmt.substr(3, eq - 3);
                auto lit = creg_label.find(creg);
                fatal_if(lit == creg_label.end(), "unknown creg '",
                         creg, "' in condition");
                cond_label = lit->second;
                cond_value =
                    std::stoull(stmt.substr(eq + 2, close - eq - 2));
                stmt = stmt.substr(close + 1);
                while (!stmt.empty() && std::isspace(
                           static_cast<unsigned char>(stmt.front())))
                    stmt.erase(stmt.begin());
            }

            // Gate statement: name[(params)] operands.
            std::size_t name_end = 0;
            while (name_end < stmt.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(stmt[name_end])) ||
                    stmt[name_end] == '_'))
                ++name_end;
            std::string name = stmt.substr(0, name_end);
            std::size_t rest = name_end;

            double angle = 0.0;
            if (rest < stmt.size() && stmt[rest] == '(') {
                const auto close = stmt.find(')', rest);
                fatal_if(close == std::string::npos,
                         "unbalanced parameter list");
                ExprParser ep(stmt.substr(rest + 1, close - rest - 1));
                angle = ep.parse();
                rest = close + 1;
            }

            // Strip 'c' control prefixes: no base mnemonic starts
            // with 'c', so the first non-'c' position starts the base
            // name ("ccu1" -> 2 controls, "u1").
            unsigned num_controls = 0;
            while (num_controls < name.size() &&
                   name[num_controls] == 'c')
                ++num_controls;

            GateKind kind;
            std::string base = name.substr(num_controls);
            if (!tryKindFromName(base, kind)) {
                // Names like "cswap" keep a leading 'c' in the base
                // only if the full string is itself a gate; retry with
                // fewer stripped prefixes before giving up.
                bool found = false;
                for (unsigned k = num_controls; k-- > 0;) {
                    base = name.substr(k);
                    if (tryKindFromName(base, kind)) {
                        num_controls = k;
                        found = true;
                        break;
                    }
                }
                fatal_if(!found, "unsupported QASM gate '", name, "'");
            }
            const auto operands = splitList(stmt.substr(rest), ',');
            fatal_if(operands.size() < num_controls + 1,
                     "not enough operands for gate");

            Instruction inst;
            inst.kind = kind;
            inst.angle = angle;
            inst.condLabel = cond_label;
            inst.condValue = cond_value;
            for (unsigned i = 0; i < num_controls; ++i)
                inst.controls.push_back(resolve(operands[i]));
            for (std::size_t i = num_controls; i < operands.size(); ++i)
                inst.targets.push_back(resolve(operands[i]));
            circ.append(inst);
            stmt.clear();
        }
    }

    flush_measures();
    return circ;
}

void
saveQasmFile(const Circuit &circ, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open '", path, "' for writing");
    out << toQasm(circ);
    fatal_if(!out, "write to '", path, "' failed");
}

Circuit
loadQasmFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open '", path, "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromQasm(buffer.str());
}

} // namespace qsa::circuit
