/**
 * @file
 * Quantum circuit container and Scaffold-style builder API.
 *
 * A Circuit owns:
 *  - the qubit space (registers allocated in declaration order),
 *  - the ordered instruction list,
 *  - a side table of dense matrices for GateKind::Unitary,
 *  - breakpoint markers (assertion sites).
 *
 * The composition helpers implement the paper's three program patterns:
 *  - iteration: plain loops in builder code (Section 4.3),
 *  - recursion / controlled operations: appendControlled (Section 4.4),
 *  - mirroring / uncomputation: inverse + append (Section 4.5).
 */

#ifndef QSA_CIRCUIT_CIRCUIT_HH
#define QSA_CIRCUIT_CIRCUIT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/instruction.hh"
#include "circuit/register.hh"
#include "sim/matrix.hh"

namespace qsa::circuit
{

/** See file comment. */
class Circuit
{
  public:
    /** Construct a circuit with an initial bare qubit count. */
    explicit Circuit(unsigned num_qubits = 0);

    /** @{ @name Qubit space */

    /** Allocate `width` fresh qubits as a named register. */
    QubitRegister addRegister(const std::string &name, unsigned width);

    /** Look up a previously added register by name. */
    const QubitRegister &reg(const std::string &name) const;

    /** All registers in declaration order. */
    const std::vector<QubitRegister> &registers() const { return regs; }

    /** Total number of qubits. */
    unsigned numQubits() const { return nQubits; }

    /** @} */
    /** @{ @name Scaffold-style gate emitters */

    /** PrepZ(q, bit): reset a qubit to |bit>. */
    void prepZ(unsigned q, unsigned bit);

    /** Load a classical integer onto a register with PrepZ per bit. */
    void prepRegister(const QubitRegister &r, std::uint64_t value);

    void h(unsigned q);
    void x(unsigned q);
    void y(unsigned q);
    void z(unsigned q);
    void s(unsigned q);
    void sdg(unsigned q);
    void t(unsigned q);
    void tdg(unsigned q);
    void rx(unsigned q, double angle);
    void ry(unsigned q, double angle);
    void rz(unsigned q, double angle);

    /** Phase ("u1") gate diag(1, e^{i angle}). */
    void phase(unsigned q, double angle);

    void cnot(unsigned ctrl, unsigned tgt);
    void ccnot(unsigned c0, unsigned c1, unsigned tgt);
    void cz(unsigned ctrl, unsigned tgt);
    void crz(unsigned ctrl, unsigned tgt, double angle);
    void cphase(unsigned ctrl, unsigned tgt, double angle);
    void ccphase(unsigned c0, unsigned c1, unsigned tgt, double angle);
    void swap(unsigned q0, unsigned q1);
    void cswap(unsigned ctrl, unsigned q0, unsigned q1);

    /** Generic gate with an arbitrary control list. */
    void controlledGate(GateKind kind,
                        const std::vector<unsigned> &controls,
                        unsigned target, double angle = 0.0);

    /** Dense unitary on an ordered qubit list (LSB first). */
    void unitary(const sim::CMatrix &u,
                 const std::vector<unsigned> &qubits,
                 const std::vector<unsigned> &controls = {});

    /** Measure a register; the outcome is recorded under `label`. */
    void measure(const QubitRegister &r, const std::string &label);

    /** Measure explicit qubits (targets[i] packs as bit i). */
    void measureQubits(const std::vector<unsigned> &qubits,
                       const std::string &label);

    /**
     * Insert a breakpoint marker. The assertion checker truncates the
     * program here and measures, exactly as the paper's compiler emits
     * one OpenQASM program per breakpoint.
     */
    void breakpoint(const std::string &label);

    /** Append a raw instruction (validated). */
    void append(const Instruction &inst);

    /**
     * Make the most recently appended instruction conditional on a
     * recorded measurement outcome (`if (label == value)`).
     */
    void conditionLast(const std::string &label, std::uint64_t value);

    /** @} */
    /** @{ @name Composition patterns */

    /**
     * Append all instructions of another circuit defined on the same
     * qubit space (widths must match).
     */
    void appendCircuit(const Circuit &other);

    /**
     * Append another circuit with extra controls added to every
     * instruction — the recursion pattern of Figure 4. The appended
     * circuit must be purely unitary.
     */
    void appendControlled(const Circuit &other,
                          const std::vector<unsigned> &controls);

    /**
     * Adjoint of this circuit (reversed order, inverted gates) — the
     * mirroring pattern used for uncomputation. Panics if the circuit
     * contains non-invertible instructions (Measure, PrepZ), and — by
     * default — classically-conditioned gates: `if (c == v) U`
     * inverts to `if (c == v) U+` only when the record `c` is not
     * rewritten between the original and the mirror, an invariant the
     * circuit cannot check for its caller. Callers that do guarantee
     * it (the locate mirror probes invert measure-free segments, so
     * no record can change inside them) pass
     * `invert_conditioned = true` to lift the guard.
     */
    Circuit inverse(bool invert_conditioned = false) const;

    /** @} */
    /** @{ @name Introspection */

    const std::vector<Instruction> &instructions() const { return insts; }

    /** Dense matrix for a Unitary instruction. */
    const sim::CMatrix &matrix(int id) const;

    /** Register a dense matrix, returning its id. */
    int addMatrix(const sim::CMatrix &m);

    /** Labels of all breakpoints in program order. */
    std::vector<std::string> breakpointLabels() const;

    /** True when a breakpoint with the given label exists. */
    bool hasBreakpoint(const std::string &label) const;

    /**
     * Instruction index of the breakpoint with the given label (the
     * number of instructions preceding the marker).
     */
    std::size_t breakpointPosition(const std::string &label) const;

    /**
     * Copy with a breakpoint "<prefix><k>" inserted at every
     * instruction boundary k of *this* circuit: boundary k sits just
     * before original instruction k, and boundary size() marks the
     * end. Existing instructions (including their own breakpoints) are
     * preserved, so one instrumented program exposes every boundary to
     * the assertion checker at once — the programmatic counterpart of
     * the paper's "insert breakpoints, recompile one truncated version
     * each" loop, and the substrate qsa::locate probes.
     */
    Circuit withBoundaryBreakpoints(
        const std::string &prefix = "qsa_boundary_") const;

    /**
     * Copy of the circuit truncated just before the named breakpoint
     * (the "compile one version per breakpoint" transformation).
     */
    Circuit prefixUpTo(const std::string &bp_label) const;

    /**
     * Copy of the instruction range [begin, end) as a circuit on the
     * same qubit space (used by the structural scopes).
     */
    Circuit sliceRange(std::size_t begin, std::size_t end) const;

    /**
     * Copy of this circuit embedded into a wider qubit space: every
     * qubit index is shifted up by `offset` and the result is defined
     * on `total_qubits` qubits. Measurement-record labels, breakpoint
     * labels, and the classical conditions that reference them are
     * prefixed with `label_prefix`, so two embedded copies of
     * measuring programs keep disjoint classical records — the
     * substrate of the swap-test comparator probes, which run the
     * suspect on the low half and the reference on the high half of
     * one probe program. Registers are carried over (shifted and
     * prefixed) for introspection.
     */
    Circuit embedded(unsigned total_qubits, unsigned offset,
                     const std::string &label_prefix = "") const;

    /** Drop instructions from the end until `new_size` remain. */
    void truncate(std::size_t new_size);

    /** Gate-count statistics (per mnemonic, controls folded in). */
    std::map<std::string, std::size_t> gateCounts() const;

    /** Total instruction count. */
    std::size_t size() const { return insts.size(); }

    /**
     * ASAP circuit depth: the longest chain of instructions that
     * touch overlapping qubits (markers excluded, measurements and
     * resets included as single-slot operations).
     */
    std::size_t depth() const;

    /**
     * Stable 64-bit content hash over a canonical encoding of the
     * circuit: qubit count, registers (name, qubit list), and every
     * instruction field that affects semantics — kind, controls,
     * targets, angle (bit pattern, -0.0 normalised to 0.0), classical
     * bit, dense matrix *contents* (ids are arbitrary), labels, and
     * conditions. Two circuits hash equal iff they are the same
     * program; the hash is identical across runs, platforms, and
     * QASM re-emission, which makes it the content address for the
     * qsa::serve oracle store.
     */
    std::uint64_t contentHash() const;

    /** @} */

  private:
    unsigned nQubits;
    std::vector<QubitRegister> regs;
    std::vector<Instruction> insts;
    std::vector<sim::CMatrix> matrices;

    void checkQubit(unsigned q) const;
    void validate(const Instruction &inst) const;
};

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_CIRCUIT_HH
