/**
 * @file
 * Circuit implementation.
 */

#include "circuit/circuit.hh"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::circuit
{

Circuit::Circuit(unsigned num_qubits) : nQubits(num_qubits)
{
}

QubitRegister
Circuit::addRegister(const std::string &name, unsigned width)
{
    fatal_if(width == 0, "register '", name, "' must have width > 0");
    for (const auto &r : regs)
        fatal_if(r.name() == name, "duplicate register name '", name, "'");

    std::vector<unsigned> qubits(width);
    for (unsigned i = 0; i < width; ++i)
        qubits[i] = nQubits + i;
    nQubits += width;

    regs.emplace_back(name, std::move(qubits));
    return regs.back();
}

const QubitRegister &
Circuit::reg(const std::string &name) const
{
    for (const auto &r : regs) {
        if (r.name() == name)
            return r;
    }
    fatal("no register named '", name, "'");
}

void
Circuit::checkQubit(unsigned q) const
{
    fatal_if(q >= nQubits, "qubit ", q, " out of range (circuit has ",
             nQubits, " qubits)");
}

void
Circuit::validate(const Instruction &inst) const
{
    for (unsigned q : inst.targets)
        checkQubit(q);
    for (unsigned q : inst.controls)
        checkQubit(q);

    std::set<unsigned> seen(inst.targets.begin(), inst.targets.end());
    fatal_if(seen.size() != inst.targets.size(),
             "duplicate target qubits in ", gateKindName(inst.kind));
    for (unsigned c : inst.controls) {
        fatal_if(seen.count(c), "control qubit ", c,
                 " collides with a target in ", gateKindName(inst.kind));
        fatal_if(!seen.insert(c).second, "duplicate control qubit ", c);
    }

    switch (inst.kind) {
      case GateKind::Swap:
        fatal_if(inst.targets.size() != 2, "swap needs two targets");
        break;
      case GateKind::Unitary:
        fatal_if(inst.matrixId < 0 ||
                     inst.matrixId >= static_cast<int>(matrices.size()),
                 "unitary instruction with invalid matrix id");
        fatal_if(matrices[inst.matrixId].dim() !=
                     pow2(inst.targets.size()),
                 "unitary dimension does not match target count");
        break;
      case GateKind::Measure:
      case GateKind::Breakpoint:
        fatal_if(!inst.controls.empty(), gateKindName(inst.kind),
                 " cannot be controlled");
        break;
      case GateKind::PrepZ:
        fatal_if(!inst.controls.empty(), "prepz cannot be controlled");
        fatal_if(inst.targets.size() != 1, "prepz takes one target");
        break;
      default:
        fatal_if(inst.targets.size() != 1, gateKindName(inst.kind),
                 " takes exactly one target");
        break;
    }
}

void
Circuit::append(const Instruction &inst)
{
    validate(inst);
    insts.push_back(inst);
}

void
Circuit::conditionLast(const std::string &label, std::uint64_t value)
{
    fatal_if(insts.empty(), "no instruction to condition");
    Instruction &inst = insts.back();
    fatal_if(inst.kind == GateKind::Breakpoint ||
                 inst.kind == GateKind::Measure,
             "cannot condition ", gateKindName(inst.kind));
    fatal_if(label.empty(), "condition label must be non-empty");
    inst.condLabel = label;
    inst.condValue = value;
}

void
Circuit::prepZ(unsigned q, unsigned bit)
{
    Instruction i;
    i.kind = GateKind::PrepZ;
    i.targets = {q};
    i.bit = bit & 1;
    append(i);
}

void
Circuit::prepRegister(const QubitRegister &r, std::uint64_t value)
{
    for (unsigned i = 0; i < r.width(); ++i)
        prepZ(r[i], static_cast<unsigned>((value >> i) & 1));
}

namespace
{

Instruction
simpleGate(GateKind kind, unsigned q, double angle = 0.0)
{
    Instruction i;
    i.kind = kind;
    i.targets = {q};
    i.angle = angle;
    return i;
}

} // anonymous namespace

void Circuit::h(unsigned q) { append(simpleGate(GateKind::H, q)); }
void Circuit::x(unsigned q) { append(simpleGate(GateKind::X, q)); }
void Circuit::y(unsigned q) { append(simpleGate(GateKind::Y, q)); }
void Circuit::z(unsigned q) { append(simpleGate(GateKind::Z, q)); }
void Circuit::s(unsigned q) { append(simpleGate(GateKind::S, q)); }
void Circuit::sdg(unsigned q) { append(simpleGate(GateKind::Sdg, q)); }
void Circuit::t(unsigned q) { append(simpleGate(GateKind::T, q)); }
void Circuit::tdg(unsigned q) { append(simpleGate(GateKind::Tdg, q)); }

void
Circuit::rx(unsigned q, double angle)
{
    append(simpleGate(GateKind::Rx, q, angle));
}

void
Circuit::ry(unsigned q, double angle)
{
    append(simpleGate(GateKind::Ry, q, angle));
}

void
Circuit::rz(unsigned q, double angle)
{
    append(simpleGate(GateKind::Rz, q, angle));
}

void
Circuit::phase(unsigned q, double angle)
{
    append(simpleGate(GateKind::Phase, q, angle));
}

void
Circuit::controlledGate(GateKind kind,
                        const std::vector<unsigned> &controls,
                        unsigned target, double angle)
{
    Instruction i;
    i.kind = kind;
    i.controls = controls;
    i.targets = {target};
    i.angle = angle;
    append(i);
}

void
Circuit::cnot(unsigned ctrl, unsigned tgt)
{
    controlledGate(GateKind::X, {ctrl}, tgt);
}

void
Circuit::ccnot(unsigned c0, unsigned c1, unsigned tgt)
{
    controlledGate(GateKind::X, {c0, c1}, tgt);
}

void
Circuit::cz(unsigned ctrl, unsigned tgt)
{
    controlledGate(GateKind::Z, {ctrl}, tgt);
}

void
Circuit::crz(unsigned ctrl, unsigned tgt, double angle)
{
    controlledGate(GateKind::Rz, {ctrl}, tgt, angle);
}

void
Circuit::cphase(unsigned ctrl, unsigned tgt, double angle)
{
    controlledGate(GateKind::Phase, {ctrl}, tgt, angle);
}

void
Circuit::ccphase(unsigned c0, unsigned c1, unsigned tgt, double angle)
{
    controlledGate(GateKind::Phase, {c0, c1}, tgt, angle);
}

void
Circuit::swap(unsigned q0, unsigned q1)
{
    Instruction i;
    i.kind = GateKind::Swap;
    i.targets = {q0, q1};
    append(i);
}

void
Circuit::cswap(unsigned ctrl, unsigned q0, unsigned q1)
{
    Instruction i;
    i.kind = GateKind::Swap;
    i.controls = {ctrl};
    i.targets = {q0, q1};
    append(i);
}

void
Circuit::unitary(const sim::CMatrix &u,
                 const std::vector<unsigned> &qubits,
                 const std::vector<unsigned> &controls)
{
    Instruction i;
    i.kind = GateKind::Unitary;
    i.targets = qubits;
    i.controls = controls;
    i.matrixId = addMatrix(u);
    append(i);
}

void
Circuit::measure(const QubitRegister &r, const std::string &label)
{
    measureQubits(r.qubits(), label);
}

void
Circuit::measureQubits(const std::vector<unsigned> &qubits,
                       const std::string &label)
{
    Instruction i;
    i.kind = GateKind::Measure;
    i.targets = qubits;
    i.label = label;
    append(i);
}

void
Circuit::breakpoint(const std::string &label)
{
    fatal_if(label.empty(), "breakpoints need a label");
    for (const auto &inst : insts)
        fatal_if(inst.kind == GateKind::Breakpoint && inst.label == label,
                 "duplicate breakpoint label '", label, "'");

    Instruction i;
    i.kind = GateKind::Breakpoint;
    i.label = label;
    append(i);
}

void
Circuit::appendCircuit(const Circuit &other)
{
    fatal_if(other.nQubits > nQubits,
             "appended circuit uses more qubits than the target");
    for (Instruction inst : other.insts) {
        if (inst.kind == GateKind::Unitary)
            inst.matrixId = addMatrix(other.matrix(inst.matrixId));
        append(inst);
    }
}

void
Circuit::appendControlled(const Circuit &other,
                          const std::vector<unsigned> &controls)
{
    fatal_if(other.nQubits > nQubits,
             "appended circuit uses more qubits than the target");
    for (Instruction inst : other.insts) {
        fatal_if(!gateKindInvertible(inst.kind) &&
                     inst.kind != GateKind::Breakpoint,
                 "cannot control non-unitary instruction ",
                 gateKindName(inst.kind));
        fatal_if(!inst.condLabel.empty(),
                 "cannot add quantum controls to a classically-"
                 "conditioned instruction");
        if (inst.kind == GateKind::Breakpoint)
            continue; // markers do not survive wrapping
        if (inst.kind == GateKind::Unitary)
            inst.matrixId = addMatrix(other.matrix(inst.matrixId));
        inst.controls.insert(inst.controls.end(), controls.begin(),
                             controls.end());
        append(inst);
    }
}

Circuit
Circuit::inverse(bool invert_conditioned) const
{
    Circuit inv(nQubits);
    inv.regs = regs;

    for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
        Instruction inst = *it;
        fatal_if(!gateKindInvertible(inst.kind),
                 "cannot invert non-unitary instruction ",
                 gateKindName(inst.kind));
        // A classically-conditioned gate inverts to its adjoint under
        // the same condition: `if (c == v) U` then `if (c == v) U+`
        // cancels exactly, provided the record `c` is not rewritten in
        // between — an invariant only the caller can guarantee (see
        // the header comment), so it is opt-in.
        fatal_if(!invert_conditioned && !inst.condLabel.empty(),
                 "cannot invert a classically-conditioned instruction");

        switch (inst.kind) {
          case GateKind::S:
            inst.kind = GateKind::Sdg;
            break;
          case GateKind::Sdg:
            inst.kind = GateKind::S;
            break;
          case GateKind::T:
            inst.kind = GateKind::Tdg;
            break;
          case GateKind::Tdg:
            inst.kind = GateKind::T;
            break;
          case GateKind::Rx:
          case GateKind::Ry:
          case GateKind::Rz:
          case GateKind::Phase:
            inst.angle = -inst.angle;
            break;
          case GateKind::Unitary:
            inst.matrixId =
                inv.addMatrix(matrix(inst.matrixId).adjoint());
            break;
          default:
            break; // self-inverse (H, X, Y, Z, Swap)
        }
        inv.append(inst);
    }
    return inv;
}

const sim::CMatrix &
Circuit::matrix(int id) const
{
    panic_if(id < 0 || id >= static_cast<int>(matrices.size()),
             "invalid matrix id ", id);
    return matrices[id];
}

int
Circuit::addMatrix(const sim::CMatrix &m)
{
    matrices.push_back(m);
    return static_cast<int>(matrices.size()) - 1;
}

std::vector<std::string>
Circuit::breakpointLabels() const
{
    std::vector<std::string> labels;
    for (const auto &inst : insts) {
        if (inst.kind == GateKind::Breakpoint)
            labels.push_back(inst.label);
    }
    return labels;
}

bool
Circuit::hasBreakpoint(const std::string &label) const
{
    for (const auto &inst : insts) {
        if (inst.kind == GateKind::Breakpoint && inst.label == label)
            return true;
    }
    return false;
}

std::size_t
Circuit::breakpointPosition(const std::string &label) const
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].kind == GateKind::Breakpoint &&
            insts[i].label == label)
            return i;
    }
    fatal("no breakpoint labelled '", label, "'");
}

Circuit
Circuit::withBoundaryBreakpoints(const std::string &prefix) const
{
    fatal_if(prefix.empty(), "boundary breakpoints need a label prefix");

    Circuit out(nQubits);
    out.regs = regs;
    for (std::size_t k = 0; k < insts.size(); ++k) {
        out.breakpoint(prefix + std::to_string(k));
        Instruction copy = insts[k];
        if (copy.kind == GateKind::Unitary)
            copy.matrixId = out.addMatrix(matrix(copy.matrixId));
        out.append(copy);
    }
    out.breakpoint(prefix + std::to_string(insts.size()));
    return out;
}

Circuit
Circuit::prefixUpTo(const std::string &bp_label) const
{
    Circuit prefix(nQubits);
    prefix.regs = regs;
    for (const auto &inst : insts) {
        if (inst.kind == GateKind::Breakpoint && inst.label == bp_label)
            return prefix;
        Instruction copy = inst;
        if (copy.kind == GateKind::Unitary)
            copy.matrixId = prefix.addMatrix(matrix(inst.matrixId));
        prefix.append(copy);
    }
    fatal("no breakpoint labelled '", bp_label, "'");
}

Circuit
Circuit::sliceRange(std::size_t begin, std::size_t end) const
{
    fatal_if(begin > end || end > insts.size(),
             "invalid instruction range [", begin, ", ", end, ")");
    Circuit slice(nQubits);
    slice.regs = regs;
    for (std::size_t i = begin; i < end; ++i) {
        Instruction copy = insts[i];
        if (copy.kind == GateKind::Unitary)
            copy.matrixId = slice.addMatrix(matrix(copy.matrixId));
        slice.append(copy);
    }
    return slice;
}

Circuit
Circuit::embedded(unsigned total_qubits, unsigned offset,
                  const std::string &label_prefix) const
{
    fatal_if(static_cast<std::uint64_t>(offset) + nQubits >
                 total_qubits,
             "cannot embed a ", nQubits, "-qubit circuit at offset ",
             offset, " into a ", total_qubits, "-qubit space");

    Circuit out(total_qubits);
    for (const auto &r : regs) {
        std::vector<unsigned> qubits;
        qubits.reserve(r.width());
        for (unsigned q : r.qubits())
            qubits.push_back(q + offset);
        out.regs.emplace_back(label_prefix + r.name(),
                              std::move(qubits));
    }
    for (Instruction inst : insts) {
        for (unsigned &q : inst.targets)
            q += offset;
        for (unsigned &q : inst.controls)
            q += offset;
        if (!inst.label.empty())
            inst.label = label_prefix + inst.label;
        if (!inst.condLabel.empty())
            inst.condLabel = label_prefix + inst.condLabel;
        if (inst.kind == GateKind::Unitary)
            inst.matrixId = out.addMatrix(matrix(inst.matrixId));
        out.append(inst);
    }
    return out;
}

void
Circuit::truncate(std::size_t new_size)
{
    fatal_if(new_size > insts.size(), "cannot truncate upward");
    insts.resize(new_size);
}

std::size_t
Circuit::depth() const
{
    std::vector<std::size_t> ready(nQubits, 0);
    std::size_t depth = 0;
    for (const auto &inst : insts) {
        if (inst.kind == GateKind::Breakpoint)
            continue;
        std::size_t slot = 0;
        for (unsigned q : inst.targets)
            slot = std::max(slot, ready[q]);
        for (unsigned q : inst.controls)
            slot = std::max(slot, ready[q]);
        ++slot;
        for (unsigned q : inst.targets)
            ready[q] = slot;
        for (unsigned q : inst.controls)
            ready[q] = slot;
        depth = std::max(depth, slot);
    }
    return depth;
}

std::map<std::string, std::size_t>
Circuit::gateCounts() const
{
    std::map<std::string, std::size_t> counts;
    for (const auto &inst : insts) {
        std::string key = gateKindName(inst.kind);
        if (!inst.controls.empty())
            key = std::string(inst.controls.size(), 'c') + key;
        ++counts[key];
    }
    return counts;
}

namespace {

/**
 * FNV-1a with explicit little-endian canonicalisation: every field is
 * reduced to a fixed-width byte sequence before mixing, so the digest
 * does not depend on host integer width or endianness.
 */
struct ContentHasher {
    std::uint64_t h = 1469598103934665603ULL;

    void byte(unsigned char c)
    {
        h = (h ^ c) * 1099511628211ULL;
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
    }

    void str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<unsigned char>(c));
    }

    void f64(double d)
    {
        if (d == 0.0)
            d = 0.0; // fold -0.0 into +0.0
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
        std::memcpy(&bits, &d, sizeof(bits));
        u64(bits);
    }
};

} // namespace

std::uint64_t Circuit::contentHash() const
{
    ContentHasher hash;
    hash.str("qsa.circuit.v1");
    hash.u64(nQubits);
    hash.u64(regs.size());
    for (const auto &r : regs) {
        hash.str(r.name());
        hash.u64(r.width());
        for (unsigned i = 0; i < r.width(); ++i)
            hash.u64(r.qubit(i));
    }
    hash.u64(insts.size());
    for (const auto &inst : insts) {
        hash.u64(static_cast<std::uint64_t>(inst.kind));
        hash.u64(inst.controls.size());
        for (unsigned c : inst.controls)
            hash.u64(c);
        hash.u64(inst.targets.size());
        for (unsigned t : inst.targets)
            hash.u64(t);
        hash.f64(inst.angle);
        hash.u64(inst.bit);
        // Hash dense matrix contents, not the side-table id: ids are
        // allocation order and differ across equal programs.
        if (inst.kind == GateKind::Unitary && inst.matrixId >= 0) {
            const auto &m = matrix(inst.matrixId);
            hash.u64(m.dim());
            for (std::size_t r = 0; r < m.dim(); ++r)
                for (std::size_t c = 0; c < m.dim(); ++c) {
                    hash.f64(m.at(r, c).real());
                    hash.f64(m.at(r, c).imag());
                }
        } else {
            hash.u64(0);
        }
        hash.str(inst.label);
        hash.str(inst.condLabel);
        hash.u64(inst.condValue);
    }
    return hash.h;
}

} // namespace qsa::circuit
