/**
 * @file
 * Gate fusion: collapse runs of adjacent small unitaries into single
 * dense Mat2/Mat4 applies.
 *
 * Everything the ensemble engine simulates — prefixes, resimulation
 * tails, oracle trajectories — bottoms out in one state-vector apply
 * per gate per trial. Fusing a run of k adjacent 1q gates on the same
 * qubit (or 1q gates sandwiching a 2q gate on its targets) into one
 * dense apply divides that per-trial cost by ~k at identical
 * semantics. The pass runs *after* prefix truncation (inside
 * EnsembleEngine), so fused programs slot into the prefix/head caches
 * by construction and arbitrary probe boundaries stay addressable on
 * the unfused IR.
 *
 * Fusion rules:
 *  - Fusible: unconditional unitary instructions spanning <= 2 qubits
 *    total — plain 1q kinds, singly-controlled 1q kinds, Swap, and
 *    dense Unitary instructions on <= 2 qubits (controls included).
 *  - Barriers: Measure, PrepZ, Breakpoint, classically-conditioned
 *    gates, and anything spanning >= 3 qubits. A barrier flushes all
 *    pending blocks, so instruction order across non-unitary events
 *    is preserved exactly (including RNG draw order).
 *  - Blocks on disjoint qubit sets commute exactly, so gates merge
 *    into the earliest open block they overlap; a block is emitted as
 *    one GateKind::Unitary instruction (ascending qubit order) when a
 *    barrier arrives or a gate would grow its span past two qubits.
 *
 * Fused execution is algebraically identical to the unfused program
 * but not bit-identical in amplitudes (matrix products round
 * differently); seeded measurement histograms and assertion verdicts
 * are unchanged in practice and pinned by tests/test_fusion.cc.
 */

#ifndef QSA_CIRCUIT_FUSION_HH
#define QSA_CIRCUIT_FUSION_HH

#include <cstddef>

#include "circuit/circuit.hh"

namespace qsa::circuit
{

/** Outcome accounting for one fusion pass. */
struct FusionStats
{
    /** Original gate instructions eliminated by merging. */
    std::size_t fusedGates = 0;

    /** Instructions in the fused circuit. */
    std::size_t emitted = 0;
};

/**
 * Return a fused copy of `in` (same qubit space and registers).
 * Per-call numbers land in `stats` when non-null. The pass itself is
 * counter-free; the EnsembleEngine bumps `sim.fused_gates` once per
 * distinct cached prefix so the total stays deterministic across
 * thread counts (racing rebuilds must not double-count).
 */
Circuit fuseGates(const Circuit &in, FusionStats *stats = nullptr);

} // namespace qsa::circuit

#endif // QSA_CIRCUIT_FUSION_HH
