/**
 * @file
 * Structural scope implementations.
 */

#include "circuit/scopes.hh"

#include "common/logging.hh"

namespace qsa::circuit
{

ComputeScope::ComputeScope(Circuit &c, const std::string &l)
    : circ(c), label(l), computeBegin(c.size()), computeEnd(c.size())
{
}

void
ComputeScope::endCompute()
{
    panic_if(computeClosed, "endCompute() called twice");
    computeClosed = true;
    computeEnd = circ.size();
    if (!label.empty())
        circ.breakpoint(label + "_computed");
}

void
ComputeScope::uncompute()
{
    if (uncomputed)
        return;
    if (!computeClosed)
        endCompute();
    uncomputed = true;

    const Circuit compute_block =
        circ.sliceRange(computeBegin, computeEnd);
    circ.appendCircuit(compute_block.inverse());
    if (!label.empty())
        circ.breakpoint(label + "_uncomputed");
}

ComputeScope::~ComputeScope()
{
    uncompute();
}

ControlScope::ControlScope(Circuit &c, std::vector<unsigned> ctrls)
    : circ(c), controls(std::move(ctrls)), begin(c.size())
{
    fatal_if(controls.empty(), "control scope needs control qubits");
}

void
ControlScope::close()
{
    if (closed)
        return;
    closed = true;

    const Circuit body = circ.sliceRange(begin, circ.size());
    circ.truncate(begin);
    circ.appendControlled(body, controls);
}

ControlScope::~ControlScope()
{
    close();
}

} // namespace qsa::circuit
