/**
 * @file
 * Structural scope implementations.
 */

#include "circuit/scopes.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qsa::circuit
{

const std::string &
scopeComputedSuffix()
{
    static const std::string suffix = "_computed";
    return suffix;
}

const std::string &
scopeUncomputedSuffix()
{
    static const std::string suffix = "_uncomputed";
    return suffix;
}

std::vector<ScopeBreakpointPair>
scopeBreakpointPairs(const Circuit &circ)
{
    const std::string &computed = scopeComputedSuffix();
    const std::string &uncomputed = scopeUncomputedSuffix();

    const auto labels = circ.breakpointLabels();
    std::vector<ScopeBreakpointPair> pairs;
    for (const auto &label : labels) {
        if (label.size() <= computed.size() ||
            label.compare(label.size() - computed.size(),
                          computed.size(), computed) != 0)
            continue;
        ScopeBreakpointPair pair;
        pair.stem = label.substr(0, label.size() - computed.size());
        pair.computed = label;
        pair.uncomputed = pair.stem + uncomputed;
        if (std::find(labels.begin(), labels.end(), pair.uncomputed) ==
            labels.end())
            continue;
        pairs.push_back(std::move(pair));
    }
    return pairs;
}

ComputeScope::ComputeScope(Circuit &c, const std::string &l)
    : circ(c), label(l), computeBegin(c.size()), computeEnd(c.size())
{
}

void
ComputeScope::endCompute()
{
    panic_if(computeClosed, "endCompute() called twice");
    computeClosed = true;
    computeEnd = circ.size();
    if (!label.empty())
        circ.breakpoint(label + scopeComputedSuffix());
}

void
ComputeScope::uncompute()
{
    if (uncomputed)
        return;
    if (!computeClosed)
        endCompute();
    uncomputed = true;

    const Circuit compute_block =
        circ.sliceRange(computeBegin, computeEnd);
    circ.appendCircuit(compute_block.inverse());
    if (!label.empty())
        circ.breakpoint(label + scopeUncomputedSuffix());
}

ComputeScope::~ComputeScope()
{
    uncompute();
}

ControlScope::ControlScope(Circuit &c, std::vector<unsigned> ctrls)
    : circ(c), controls(std::move(ctrls)), begin(c.size())
{
    fatal_if(controls.empty(), "control scope needs control qubits");
}

void
ControlScope::close()
{
    if (closed)
        return;
    closed = true;

    const Circuit body = circ.sliceRange(begin, circ.size());
    circ.truncate(begin);
    circ.appendControlled(body, controls);
}

ControlScope::~ControlScope()
{
    close();
}

} // namespace qsa::circuit
