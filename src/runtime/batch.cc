/**
 * @file
 * BatchRunner implementation.
 */

#include "runtime/batch.hh"

#include "common/logging.hh"

namespace qsa::runtime
{

BatchRunner::BatchRunner(unsigned num_threads)
    : poolPtr(&ThreadPool::resolve(num_threads, ownedPool))
{
}

BatchRunner::~BatchRunner() = default;

std::vector<std::vector<assertions::AssertionOutcome>>
BatchRunner::checkAll(const std::vector<BatchItem> &items)
{
    std::vector<std::vector<assertions::AssertionOutcome>> results(
        items.size());
    struct Unit
    {
        std::size_t item;
        std::size_t spec;
    };
    std::vector<Unit> units;
    for (std::size_t i = 0; i < items.size(); ++i) {
        results[i].resize(items[i].specs.size());
        for (std::size_t j = 0; j < items[i].specs.size(); ++j)
            units.push_back({i, j});
    }

    // One checker per item so every assertion against the same program
    // shares that item's truncated-circuit and prefix-state caches.
    // Per-item numThreads is replaced (see BatchItem::config): with
    // several units, ensembles run inline on the batch workers
    // (nested parallelFor, pool.hh), so dedicated per-item pools
    // would only spawn threads that never execute work; with exactly
    // one unit there is nothing to fan out at unit granularity, so
    // the single checker gets this runner's own concurrency instead.
    // Outcomes are numThreads-invariant either way, preserving
    // bit-identity with serial checkAll.
    // (0 = the shared pool; a dedicated count only when this runner
    // owns a custom-size pool, so a shared-pool runner does not spawn
    // a redundant hardware-wide pool next to the idle shared one.
    // Known tradeoff: in the custom-size case the ensemble pool is a
    // second, transient set of threads while the runner's workers sit
    // idle — reusing them would mean plumbing a pool handle through
    // CheckConfig, which is not worth it for a scheduling wart.)
    // A serial runner must stay serial end to end: its units run
    // inline on the posting thread (not on a pool worker), so without
    // the explicit 1 their engines would resolve the hardware-wide
    // shared pool behind the caller's back.
    const unsigned ensemble_threads =
        poolPtr->concurrency() == 1         ? 1
        : units.size() == 1 && ownedPool    ? poolPtr->concurrency()
                                            : 0;
    std::vector<std::unique_ptr<assertions::AssertionChecker>> checkers;
    checkers.reserve(items.size());
    for (const auto &item : items) {
        fatal_if(item.program == nullptr,
                 "BatchItem has no program attached");
        auto config = item.config;
        config.numThreads = ensemble_threads;
        checkers.push_back(
            std::make_unique<assertions::AssertionChecker>(
                *item.program, config));
    }

    poolPtr->parallelFor(units.size(), [&](std::size_t k) {
        const auto [i, j] = units[k];
        results[i][j] = checkers[i]->check(items[i].specs[j]);
    });
    return results;
}

std::vector<assertions::AssertionOutcome>
BatchRunner::checkAll(const assertions::AssertionChecker &checker,
                      const std::vector<assertions::AssertionSpec> &specs,
                      const assertions::EscalationPolicy *escalation,
                      const std::vector<std::size_t> *ensemble_sizes)
{
    fatal_if(ensemble_sizes != nullptr &&
                 ensemble_sizes->size() != specs.size(),
             "per-spec ensemble sizes must match the spec count");
    std::vector<assertions::AssertionOutcome> outcomes(specs.size());
    const auto unit = [&](std::size_t j) {
        const std::size_t size =
            ensemble_sizes ? (*ensemble_sizes)[j] : 0;
        if (escalation) {
            assertions::EscalationPolicy policy = *escalation;
            if (size != 0) {
                policy.initialSize = size;
                policy.maxSize = std::max(policy.maxSize, size);
            }
            outcomes[j] = checker.checkEscalated(specs[j], policy);
        } else if (size != 0) {
            outcomes[j] = checker.check(specs[j], size);
        } else {
            outcomes[j] = checker.check(specs[j]);
        }
    };
    if (specs.size() <= 1) {
        // No unit-level fan-out to gain: run directly so the one
        // ensemble still shards its trials across the engine's pool
        // (a parallelFor(1) body would count as a worker and force
        // the nested ensemble gather inline).
        for (std::size_t j = 0; j < specs.size(); ++j)
            unit(j);
    } else {
        poolPtr->parallelFor(specs.size(), unit);
    }
    return outcomes;
}

std::vector<std::vector<assertions::AssertionOutcome>>
BatchRunner::checkAll(
    const std::vector<const circuit::Circuit *> &programs,
    const std::vector<assertions::AssertionSpec> &specs,
    const assertions::CheckConfig &config)
{
    std::vector<BatchItem> items;
    items.reserve(programs.size());
    for (const auto *program : programs)
        items.push_back({program, specs, config});
    return checkAll(items);
}

} // namespace qsa::runtime
