/**
 * @file
 * ThreadPool implementation.
 */

#include "runtime/pool.hh"

#include "common/logging.hh"
#include "obs/obs.hh"

namespace qsa::runtime
{

namespace
{

/**
 * Set while the current thread is executing a parallelFor body on
 * behalf of any pool; nested parallelFor calls detect it and run
 * inline instead of re-entering a pool.
 */
thread_local bool inside_worker = false;

} // anonymous namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers.reserve(num_threads - 1);
    for (unsigned i = 0; i + 1 < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(poolMutex);
        stopping = true;
        // Both waiter classes must observe the shutdown: workers
        // blocked on `wake` and posters blocked on `idle` (whose
        // predicate is stopping-aware; they fall back to running
        // their job inline). Forgetting `idle` deadlocks any thread
        // mid-post when a pool dies under load.
        wake.notify_all();
        idle.notify_all();
        // Let the in-flight job (if any) finish and every blocked
        // poster leave before the workers are joined.
        drained.wait(lock, [this] {
            return postersWaiting == 0 && current == nullptr;
        });
    }
    for (auto &worker : workers)
        worker.join();
}

bool
ThreadPool::insideWorker()
{
    return inside_worker;
}

void
ThreadPool::drainJob(Job &job)
{
    while (true) {
        const std::size_t i = job.next.fetch_add(1);
        if (i >= job.n)
            break;
        QSA_OBS_COUNTER("runtime.pool.tasks", 1);
        // Letting an exception escape would leave the body and its
        // output buffers dangling under the other workers; capture
        // the first one instead and rethrow it from the poster once
        // every claimed call has returned (see pool.hh). After a
        // failure the remaining indices are skipped.
        try {
            if (!job.failed.load(std::memory_order_relaxed))
                (*job.body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            if (!job.error) {
                job.error = std::current_exception();
                job.failed.store(true, std::memory_order_relaxed);
            }
        }
        if (job.completed.fetch_add(1) + 1 == job.n) {
            // Take the mutex so the poster cannot check the predicate
            // and block between our increment and our notify.
            std::lock_guard<std::mutex> lock(job.doneMutex);
            job.done.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    inside_worker = true;
    std::unique_lock<std::mutex> lock(poolMutex);
    while (true) {
        {
            // Time blocked-without-work episodes; this is the pool's
            // idle-time signal (wall-clock, not part of the
            // determinism contract).
            QSA_OBS_TIMER(idle_wait, "runtime.pool.worker_idle");
            wake.wait(lock, [this] {
                return stopping ||
                       (current && current->next.load() < current->n);
            });
        }
        // Drain an in-flight job even when stopping: teardown must
        // not drop work the poster already handed over.
        if (current && current->next.load() < current->n) {
            auto job = current;
            lock.unlock();
            drainJob(*job);
            lock.lock();
            continue;
        }
        if (stopping)
            return;
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workers.empty() || n == 1 || inside_worker) {
        // Serial pool, trivial range, or a nested call from a worker:
        // run inline (see the deadlock-freedom note in pool.hh).
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->n = n;

    QSA_OBS_COUNTER("runtime.pool.jobs", 1);
    QSA_OBS_GAUGE_ADD("runtime.pool.queue_depth", 1);
    {
        // Serialise posters: one job owns the pool at a time. The
        // wait is stopping-aware so pool destruction cannot strand a
        // thread here (see ~ThreadPool); on shutdown the job runs
        // inline below, touching no pool state after the unlock.
        std::unique_lock<std::mutex> lock(poolMutex);
        QSA_OBS_TIMER(post_wait, "runtime.pool.poster_wait");
        ++postersWaiting;
        idle.wait(lock,
                  [this] { return stopping || current == nullptr; });
        --postersWaiting;
        if (stopping) {
            drained.notify_all();
            lock.unlock();
            for (std::size_t i = 0; i < n; ++i)
                body(i);
            QSA_OBS_GAUGE_ADD("runtime.pool.queue_depth", -1);
            return;
        }
        current = job;
    }
    wake.notify_all();

    // The poster works too, then blocks until the stragglers finish.
    const bool was_inside = inside_worker;
    inside_worker = true;
    drainJob(*job);
    inside_worker = was_inside;

    {
        std::unique_lock<std::mutex> lock(job->doneMutex);
        QSA_OBS_TIMER(straggler_wait, "runtime.pool.poster_wait");
        job->done.wait(lock, [&] {
            return job->completed.load() == job->n;
        });
    }
    {
        // Notify under the lock: the destructor's drained.wait cannot
        // finish (and free the condition variables) before this
        // region releases poolMutex, and nothing here touches the
        // pool after that.
        std::lock_guard<std::mutex> lock(poolMutex);
        current.reset();
        if (stopping)
            drained.notify_all();
        else
            idle.notify_one();
    }
    QSA_OBS_GAUGE_ADD("runtime.pool.queue_depth", -1);

    if (job->error)
        std::rethrow_exception(job->error);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool &
ThreadPool::resolve(unsigned num_threads,
                    std::unique_ptr<ThreadPool> &owned)
{
    if (num_threads == 0)
        return shared();
    owned = std::make_unique<ThreadPool>(num_threads);
    return *owned;
}

} // namespace qsa::runtime
