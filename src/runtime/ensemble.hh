/**
 * @file
 * Sharded ensemble-execution engine.
 *
 * The paper's toolflow truncates the program at a breakpoint and runs
 * an *ensemble* of independent executions whose outcome counts feed the
 * chi-square machinery; the authors needed a cluster because ensembles
 * dominate the cost. The EnsembleEngine reproduces that fan-out on a
 * thread pool:
 *
 *  - the N trials are split into contiguous shards, one per available
 *    worker, and each shard runs on its own thread;
 *  - every trial m derives its own RNG stream from the master seed by
 *    trial index (Rng::split(m), collision-free — see rng.hh), never
 *    from the worker or shard it happens to land on, so results are
 *    bit-identical for any thread count, including 1;
 *  - per-shard results land in disjoint slices of a preallocated
 *    trial-ordered buffer (and per-shard histograms are merged in
 *    shard order), so the merge is deterministic by construction;
 *  - in SampleFinalState mode the truncated circuit is simulated ONCE,
 *    the final state is cached per (breakpoint, seed), and the N shots
 *    are multinomial-sampled from the exact outcome distribution via
 *    inverse-CDF binary search — re-running the circuit per shot is
 *    reserved for Resimulate mode, which stays exact for programs with
 *    mid-circuit measurement;
 *  - in Resimulate mode the truncated circuit's *deterministic head*
 *    — the longest prefix containing no measurement, no conditional
 *    instruction, and only resets whose outcome is certain — is
 *    simulated once and cached per breakpoint; each trial then copies
 *    the head state and re-simulates only the nondeterministic tail.
 *    For the paper's measurement-free benchmarks the whole truncated
 *    program is head, collapsing a Resimulate ensemble's cost to one
 *    simulation plus N state copies; for semiclassical programs the
 *    per-trial cost is the region from the first measurement on.
 *
 * RNG stream layout (fixed; part of the reproducibility contract):
 *  - Resimulate: trial m uses Rng(seed).split(m) for both gate-level
 *    randomness and the truncating measurement. The cached head
 *    consumes no outcome-relevant randomness, and each trial discards
 *    exactly the draws the head's resets would have made, so trial
 *    outcomes are bit-identical to an uncached full re-simulation
 *    (up to reset outcomes whose probability is below the ~1e-12
 *    determinism tolerance).
 *  - SampleFinalState: the single prefix execution uses
 *    Rng(seed).split(0); shot m draws its uniform from
 *    Rng(seed).split(m + 1).
 */

#ifndef QSA_RUNTIME_ENSEMBLE_HH
#define QSA_RUNTIME_ENSEMBLE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "circuit/circuit.hh"
#include "circuit/executor.hh"
#include "runtime/pool.hh"
#include "sim/statevector.hh"

namespace qsa::runtime
{

/**
 * Precomputed split of a truncated circuit for Resimulate mode: the
 * deterministic head's final state (simulated once), the number of
 * RNG draws the head's resets would have consumed per trial, and the
 * nondeterministic tail each trial actually re-simulates. See the
 * file comment for the exactness contract.
 */
struct ResimPlan
{
    /** State after the deterministic head. */
    sim::StateVector headState;

    /** Per-trial RNG draws the head's resets would have made. */
    std::size_t headDraws = 0;

    /** Instructions after the head (possibly empty). */
    circuit::Circuit tail;

    /** Tensor-split stages; when set, trials run staged and the
     *  monolithic head above is a 1-qubit placeholder. */
    std::shared_ptr<const struct ResimStages> stages;

    explicit ResimPlan(unsigned num_qubits) : headState(num_qubits) {}
};

/**
 * Stage decomposition of a truncated circuit whose leading
 * instructions act only on the low `split` qubits, followed by a run
 * acting only on the high qubits, followed by a combining tail on the
 * full space — the shape of every swap-test probe (suspect prefix,
 * embedded reference prefix, ancilla-controlled-SWAP comparator).
 * Trials simulate the two halves on 2^split- and 2^(n-split)-sized
 * states and tensor them together only for the comparator
 * (StateVector::tensorWith), cutting per-trial cost from 2^n toward
 * 2^split + 2^(n-split) + |combo| full-space applies. RNG draw order
 * is the monolithic program order (low, then high, then combo), so
 * outcome streams match an unstaged run draw for draw.
 */
struct TensorStages
{
    /** Low-qubit count; the high block holds numQubits() - split. */
    unsigned split = 0;

    /** Leading instructions on qubits [0, split). */
    circuit::Circuit low;

    /** Following high-only run, indices shifted down by `split`. */
    circuit::Circuit high;

    /** Everything after, on the full qubit space. */
    circuit::Circuit combo;
};

/** Resimulate-mode head/tail splits of both tensor stages. */
struct ResimStages
{
    /** The stage decomposition the tails below were cut from. */
    std::shared_ptr<const TensorStages> layout;

    /** Deterministic-head state and per-trial draws of the low block. */
    sim::StateVector lowHead;
    std::size_t lowDraws = 0;
    circuit::Circuit lowTail;

    /** Same for the high block (shifted index space). */
    sim::StateVector highHead;
    std::size_t highDraws = 0;
    circuit::Circuit highTail;

    ResimStages(unsigned low_qubits, unsigned high_qubits)
        : lowHead(low_qubits), highHead(high_qubits)
    {
    }
};

/** How ensemble members are produced (assertions::EnsembleMode twin). */
enum class SampleMode
{
    /** One truncated-circuit simulation per trial. */
    Resimulate,

    /** Simulate the prefix once, multinomial-sample the shots. */
    SampleFinalState,
};

/** One ensemble request: where to truncate, what to measure, how. */
struct EnsembleSpec
{
    /** Breakpoint label the program is truncated at. */
    std::string breakpoint;

    /** Joint measurement qubit list (qubits[i] packs as bit i). */
    std::vector<unsigned> qubits;

    /** Number of trials. */
    std::size_t shots = 0;

    /** Trial generation mode. */
    SampleMode mode = SampleMode::SampleFinalState;

    /** Master seed; every trial gets a split stream (see file comment). */
    std::uint64_t seed = 0;
};

/**
 * Inverse-CDF sampler over a fixed discrete distribution: O(domain)
 * once to build, O(log domain) per draw — the multinomial shot sampler
 * behind SampleFinalState mode (the linear scan in Rng::discrete is
 * too slow at 2^width bins times millions of shots).
 */
class CdfSampler
{
  public:
    /** @param probs unnormalised non-negative weights, positive sum. */
    explicit CdfSampler(const std::vector<double> &probs);

    /** Map a uniform [0, 1) draw to a bin index. */
    std::size_t sample(double u) const;

  private:
    std::vector<double> cdf;
};

/**
 * See file comment. An engine is bound to one program; it may be used
 * concurrently from several threads (BatchRunner does), with the
 * prefix caches protected internally.
 */
/** Per-engine simulation options (fixed for the engine's lifetime, so
 *  every cache entry is built under one option set). */
struct EngineOptions
{
    /** Run the gate-fusion pass on every truncated prefix. */
    bool fuseGates = true;

    /**
     * Tensor-split hint: when non-zero, truncated prefixes whose
     * leading instructions separate into a low block on this many
     * qubits followed by a high-only block (the swap-probe shape) are
     * simulated half-by-half and tensored at the combining tail.
     * Prefixes without that structure fall back to monolithic
     * execution automatically.
     */
    unsigned tensorSplit = 0;
};

class EnsembleEngine
{
  public:
    /**
     * @param program the full instrumented program; must outlive the
     *        engine (held by reference)
     * @param num_threads worker threads for the shards: 0 = the
     *        process-wide shared pool, otherwise a dedicated pool of
     *        exactly that concurrency (1 = serial)
     * @param options per-engine simulation options
     */
    explicit EnsembleEngine(const circuit::Circuit &program,
                            unsigned num_threads = 0,
                            EngineOptions options = {});

    /**
     * Gather the ensemble: trial-ordered joint measurement outcomes
     * (entry m is trial m's value, identical for any thread count).
     */
    std::vector<std::uint64_t> gather(const EnsembleSpec &spec);

    /**
     * As gather(), but fold each shard into a local histogram and merge
     * the shard histograms in shard order — O(distinct outcomes)
     * memory instead of O(shots), for huge ensembles.
     */
    std::map<std::uint64_t, std::uint64_t>
    gatherHistogram(const EnsembleSpec &spec);

    /**
     * Drop the cached truncated circuits, prefix states, resimulation
     * head states, and shot samplers. The caches trade memory for
     * speed — a prefix or head state is a full 2^n statevector per
     * breakpoint — so long-lived sessions that sweep many breakpoints
     * can call this to bound the footprint.
     */
    void clearCache();

    /**
     * The pool the shards run on; resolved (and for a dedicated pool,
     * spawned) on first use, so idle engines own no threads.
     */
    ThreadPool &pool();

  private:
    const circuit::Circuit *program;
    unsigned numThreads;
    EngineOptions options;
    std::once_flag poolOnce;
    std::unique_ptr<ThreadPool> ownedPool;
    ThreadPool *poolPtr = nullptr;

    std::mutex cacheMutex;

    /** Truncated circuits keyed by breakpoint label. */
    std::map<std::string, std::shared_ptr<const circuit::Circuit>>
        prefixCache;

    /**
     * Resimulate-mode head/tail splits keyed by breakpoint label.
     * Seed-independent: the head is deterministic by construction.
     */
    std::map<std::string, std::shared_ptr<const ResimPlan>>
        resimCache;

    /**
     * One in-flight-or-done prefix simulation. A future so a cache
     * miss simulates OUTSIDE the cache mutex: concurrent gathers at
     * distinct breakpoints simulate in parallel, while racers on the
     * same key wait for the one simulation instead of duplicating it.
     * The claim id lets exception cleanup evict exactly its own entry
     * (not a successor's, re-claimed after a clearCache()).
     */
    struct PrefixClaim
    {
        std::shared_future<
            std::shared_ptr<const circuit::ExecutionRecord>>
            future;
        std::uint64_t claim = 0;
    };

    /** Prefix execution records keyed by (breakpoint, seed). */
    std::map<std::pair<std::string, std::uint64_t>, PrefixClaim>
        stateCache;

    /** Next claim id for stateCache entries; guarded by cacheMutex. */
    std::uint64_t nextClaim = 0;

    /**
     * Built CdfSamplers keyed by (breakpoint, seed, qubits): repeated
     * gathers of the same request skip the O(2^n) marginalisation and
     * CDF build, not just the prefix simulation.
     */
    std::map<std::tuple<std::string, std::uint64_t,
                        std::vector<unsigned>>,
             std::shared_ptr<const CdfSampler>>
        samplerCache;

    /**
     * Tensor-stage decompositions keyed by breakpoint; a null entry
     * records "this prefix does not split" so the scan runs once.
     */
    std::map<std::string, std::shared_ptr<const TensorStages>>
        stagesCache;

    std::shared_ptr<const circuit::Circuit>
    prefix(const std::string &breakpoint);

    std::shared_ptr<const TensorStages>
    tensorStages(const std::string &breakpoint);

    std::shared_ptr<const circuit::ExecutionRecord>
    prefixState(const std::string &breakpoint, std::uint64_t seed);

    std::shared_ptr<const ResimPlan>
    resimPlan(const std::string &breakpoint);

    std::shared_ptr<const CdfSampler>
    shotSampler(const EnsembleSpec &spec);

    /** Run trials [lo, hi) of `spec`, writing out[m] for each m. */
    void runTrials(const EnsembleSpec &spec, const ResimPlan *plan,
                   const CdfSampler *sampler, std::size_t lo,
                   std::size_t hi, std::uint64_t *out) const;
};

} // namespace qsa::runtime

#endif // QSA_RUNTIME_ENSEMBLE_HH
