/**
 * @file
 * EnsembleEngine implementation.
 */

#include "runtime/ensemble.hh"

#include <algorithm>
#include <cmath>

#include "circuit/fusion.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace qsa::runtime
{

namespace
{

/** Contiguous trial range [lo, hi) of shard s out of num_shards. */
std::pair<std::size_t, std::size_t>
shardRange(std::size_t s, std::size_t num_shards, std::size_t n)
{
    const std::size_t base = n / num_shards;
    const std::size_t rem = n % num_shards;
    const std::size_t lo = s * base + std::min(s, rem);
    return {lo, lo + base + (s < rem ? 1 : 0)};
}

/**
 * Reset outcomes at least this certain are treated as deterministic
 * when extending a Resimulate head. An uncached run taking the other
 * branch is below this probability per reset — the quantified slack
 * in the head cache's bit-identity contract (ensemble.hh).
 */
constexpr double kDeterministicTol = 1e-12;

/**
 * Simulate the deterministic head of `circ` into `state` (which must
 * start as |0...0> on at least circ.numQubits()): unitary gates and
 * markers always; resets only when the current state fixes their
 * implicit measurement outcome; stop at the first Measure or
 * classically-conditioned instruction. Returns the head length;
 * `draws` receives the per-trial RNG draws the head's resets would
 * have consumed.
 */
std::size_t
extendDeterministicHead(const circuit::Circuit &circ,
                        sim::StateVector &state, std::size_t &draws)
{
    const auto &insts = circ.instructions();
    std::size_t head = 0;
    for (; head < insts.size(); ++head) {
        const circuit::Instruction &inst = insts[head];
        if (inst.kind == circuit::GateKind::Measure ||
            !inst.condLabel.empty())
            break;
        if (inst.kind == circuit::GateKind::PrepZ) {
            const unsigned q = inst.targets[0];
            const double p1 = state.probabilityOne(q);
            if (p1 > kDeterministicTol && p1 < 1.0 - kDeterministicTol)
                break; // genuinely random reset: tail territory
            const unsigned outcome = p1 >= 0.5 ? 1 : 0;
            // One bernoulli draw the uncached run would have made.
            ++draws;
            state.projectQubit(q, outcome, outcome ? p1 : 1.0 - p1);
            if (outcome != (inst.bit & 1))
                state.applyGate(sim::Mat2{0.0, 1.0, 1.0, 0.0}, q);
            continue;
        }
        circuit::applyUnitaryInstruction(circ, inst, state);
    }
    return head;
}

/**
 * Scan a truncated circuit for the tensor-split shape: a maximal
 * leading run touching only qubits < split, then a maximal run
 * touching only qubits >= split, then the combining remainder.
 * Returns null when either block is empty (nothing to stage).
 * Qubit-free markers bind to the phase they appear in.
 */
std::shared_ptr<const TensorStages>
buildTensorStages(const circuit::Circuit &prefix, unsigned split)
{
    const unsigned total = prefix.numQubits();
    if (split == 0 || split >= total)
        return nullptr;

    const auto spanOf = [](const circuit::Instruction &inst) {
        std::vector<unsigned> span = inst.targets;
        span.insert(span.end(), inst.controls.begin(),
                    inst.controls.end());
        return span;
    };
    const auto onlyBelow = [&](const circuit::Instruction &inst,
                               unsigned bound, unsigned base) {
        const auto span = spanOf(inst);
        if (span.empty())
            return true; // markers bind to the current phase
        return std::all_of(span.begin(), span.end(), [&](unsigned q) {
            return q >= base && q < bound;
        });
    };

    const auto &insts = prefix.instructions();
    std::size_t low_end = 0;
    while (low_end < insts.size() &&
           onlyBelow(insts[low_end], split, 0))
        ++low_end;
    std::size_t high_end = low_end;
    while (high_end < insts.size() &&
           onlyBelow(insts[high_end], total, split))
        ++high_end;
    if (low_end == 0 || high_end == low_end)
        return nullptr;

    auto stages = std::make_shared<TensorStages>();
    stages->split = split;
    stages->low = circuit::Circuit(split);
    stages->high = circuit::Circuit(total - split);
    stages->combo = prefix.sliceRange(high_end, insts.size());
    for (std::size_t i = 0; i < low_end; ++i) {
        circuit::Instruction copy = insts[i];
        if (copy.kind == circuit::GateKind::Unitary)
            copy.matrixId =
                stages->low.addMatrix(prefix.matrix(copy.matrixId));
        stages->low.append(copy);
    }
    for (std::size_t i = low_end; i < high_end; ++i) {
        circuit::Instruction copy = insts[i];
        for (unsigned &q : copy.targets)
            q -= split;
        for (unsigned &q : copy.controls)
            q -= split;
        if (copy.kind == circuit::GateKind::Unitary)
            copy.matrixId =
                stages->high.addMatrix(prefix.matrix(copy.matrixId));
        stages->high.append(copy);
    }
    return stages;
}

} // anonymous namespace

// --- CdfSampler ------------------------------------------------------------

CdfSampler::CdfSampler(const std::vector<double> &probs)
{
    panic_if(probs.empty(), "CdfSampler needs a non-empty distribution");
    cdf.resize(probs.size());
    double running = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        panic_if(probs[i] < 0.0 || std::isnan(probs[i]),
                 "CdfSampler weights must be non-negative");
        running += probs[i];
        cdf[i] = running;
    }
    panic_if(running <= 0.0,
             "CdfSampler weights must have a positive sum");
}

std::size_t
CdfSampler::sample(double u) const
{
    const double v = u * cdf.back();
    std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(cdf.begin(), cdf.end(), v) - cdf.begin());
    if (idx >= cdf.size()) {
        // u * total rounded up to total itself; walk back to the last
        // positive-width bin. upper_bound otherwise never lands on a
        // zero-width (zero-probability) bin.
        idx = cdf.size() - 1;
        while (idx > 0 && cdf[idx] == cdf[idx - 1])
            --idx;
    }
    return idx;
}

// --- EnsembleEngine --------------------------------------------------------

EnsembleEngine::EnsembleEngine(const circuit::Circuit &prog,
                               unsigned num_threads,
                               EngineOptions opts)
    : program(&prog), numThreads(num_threads), options(opts)
{
}

ThreadPool &
EnsembleEngine::pool()
{
    // Deferred so constructing an engine (or an AssertionChecker that
    // never checks anything) spawns no threads and does not
    // instantiate the shared pool.
    std::call_once(poolOnce, [this] {
        poolPtr = &ThreadPool::resolve(numThreads, ownedPool);
    });
    return *poolPtr;
}

std::shared_ptr<const circuit::Circuit>
EnsembleEngine::prefix(const std::string &breakpoint)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = prefixCache.find(breakpoint);
        if (it != prefixCache.end()) {
            QSA_OBS_COUNTER("runtime.prefix_cache.hits", 1);
            return it->second;
        }
    }
    // Slice (and fuse) outside the lock — an O(#gates) circuit copy;
    // racers may slice twice but the copies are identical and the
    // first insertion wins. A losing racer counts as a hit so the
    // miss total stays deterministic (misses == distinct
    // breakpoints). Fusing here means every downstream consumer —
    // prefix simulations, resimulation heads and tails, samplers —
    // sees the fused program, so the fused circuits slot into the
    // prefix/head caches by construction.
    circuit::Circuit sliced = program->prefixUpTo(breakpoint);
    circuit::FusionStats fusion;
    if (options.fuseGates)
        sliced = circuit::fuseGates(sliced, &fusion);
    auto built =
        std::make_shared<const circuit::Circuit>(std::move(sliced));
    std::lock_guard<std::mutex> lock(cacheMutex);
    const auto [it, inserted] =
        prefixCache.emplace(breakpoint, std::move(built));
    if (inserted) {
        QSA_OBS_COUNTER("runtime.prefix_cache.misses", 1);
        // Counted on the winning insertion only, so the fusion total
        // is deterministic (racing rebuilds fuse identically but must
        // not double-count).
        QSA_OBS_COUNTER("sim.fused_gates", fusion.fusedGates);
    } else {
        QSA_OBS_COUNTER("runtime.prefix_cache.hits", 1);
    }
    return it->second;
}

std::shared_ptr<const TensorStages>
EnsembleEngine::tensorStages(const std::string &breakpoint)
{
    if (options.tensorSplit == 0)
        return nullptr;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = stagesCache.find(breakpoint);
        if (it != stagesCache.end())
            return it->second;
    }
    auto sliced = prefix(breakpoint);
    auto built = buildTensorStages(*sliced, options.tensorSplit);
    std::lock_guard<std::mutex> lock(cacheMutex);
    const auto [it, inserted] =
        stagesCache.emplace(breakpoint, std::move(built));
    if (inserted && it->second != nullptr)
        QSA_OBS_COUNTER("runtime.tensor_stages.built", 1);
    return it->second;
}

std::shared_ptr<const circuit::ExecutionRecord>
EnsembleEngine::prefixState(const std::string &breakpoint,
                            std::uint64_t seed)
{
    auto sliced = prefix(breakpoint);
    const auto key = std::make_pair(breakpoint, seed);

    // Find-or-claim under the lock, simulate outside it: concurrent
    // gathers at distinct breakpoints run their prefix simulations in
    // parallel; racers on the same key wait on the winner's future.
    std::promise<std::shared_ptr<const circuit::ExecutionRecord>>
        promise;
    std::shared_future<std::shared_ptr<const circuit::ExecutionRecord>>
        future;
    bool claimed = false;
    std::uint64_t claim_id = 0;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = stateCache.find(key);
        if (it == stateCache.end()) {
            future = promise.get_future().share();
            claim_id = ++nextClaim;
            stateCache.emplace(key, PrefixClaim{future, claim_id});
            claimed = true;
        } else {
            future = it->second.future;
        }
    }
    if (claimed)
        QSA_OBS_COUNTER("runtime.state_cache.misses", 1);
    else
        QSA_OBS_COUNTER("runtime.state_cache.hits", 1);
    if (claimed) {
        // The one prefix execution of SampleFinalState mode; stream
        // split(0) per the layout in the file comment. When the
        // prefix tensor-splits, the halves simulate on their small
        // spaces (same instruction and draw order as a monolithic
        // run) and combine only for the tail.
        try {
            auto stages = tensorStages(breakpoint);
            Rng rng = Rng(seed).split(0);
            if (stages != nullptr) {
                auto record =
                    std::make_shared<circuit::ExecutionRecord>(
                        program->numQubits());
                sim::StateVector low_state(stages->split);
                sim::StateVector high_state(program->numQubits() -
                                            stages->split);
                circuit::runCircuitOn(stages->low, low_state,
                                      record->measurements, rng);
                circuit::runCircuitOn(stages->high, high_state,
                                      record->measurements, rng);
                record->state = low_state.tensorWith(high_state);
                circuit::runCircuitOn(stages->combo, record->state,
                                      record->measurements, rng);
                promise.set_value(std::move(record));
            } else {
                promise.set_value(
                    std::make_shared<circuit::ExecutionRecord>(
                        circuit::runCircuit(*sliced, rng)));
            }
        } catch (...) {
            // Library errors fatal/panic rather than throw, but e.g.
            // bad_alloc can still unwind here: hand racers the
            // exception and drop the entry so later calls retry
            // instead of hitting a broken promise forever.
            promise.set_exception(std::current_exception());
            {
                // Evict only our own entry — a clearCache() plus
                // re-claim may have installed a successor's live
                // future under the same key.
                std::lock_guard<std::mutex> lock(cacheMutex);
                auto it = stateCache.find(key);
                if (it != stateCache.end() &&
                    it->second.claim == claim_id)
                    stateCache.erase(it);
            }
            throw;
        }
    }
    return future.get();
}

std::shared_ptr<const ResimPlan>
EnsembleEngine::resimPlan(const std::string &breakpoint)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = resimCache.find(breakpoint);
        if (it != resimCache.end()) {
            QSA_OBS_COUNTER("runtime.head_cache.hits", 1);
            return it->second;
        }
    }
    // Build outside the lock (one head simulation); racers may build
    // twice but the builds are identical and the first insertion wins.
    auto sliced = prefix(breakpoint);
    auto stages = tensorStages(breakpoint);

    std::shared_ptr<ResimPlan> plan;
    if (stages != nullptr) {
        // Staged: per-half deterministic heads on the small spaces;
        // trials copy the half states, run the half tails, and tensor
        // only for the combining tail. The monolithic head is a
        // 1-qubit placeholder so a cached plan never pins a full-size
        // state it will not use.
        auto staged = std::make_shared<ResimStages>(
            stages->split, program->numQubits() - stages->split);
        staged->layout = stages;
        const std::size_t low_head = extendDeterministicHead(
            stages->low, staged->lowHead, staged->lowDraws);
        staged->lowTail =
            stages->low.sliceRange(low_head, stages->low.size());
        const std::size_t high_head = extendDeterministicHead(
            stages->high, staged->highHead, staged->highDraws);
        staged->highTail =
            stages->high.sliceRange(high_head, stages->high.size());
        plan = std::make_shared<ResimPlan>(1);
        plan->stages = std::move(staged);
    } else {
        plan = std::make_shared<ResimPlan>(program->numQubits());

        // Extend the head while instructions are deterministic:
        // unitary gates and markers always; resets only when the
        // current state fixes their implicit measurement outcome;
        // stop at the first Measure or classically-conditioned
        // instruction (there is no record to condition on yet — a
        // valid program measures first).
        const std::size_t head = extendDeterministicHead(
            *sliced, plan->headState, plan->headDraws);
        plan->tail = sliced->sliceRange(head, sliced->size());
    }

    std::lock_guard<std::mutex> lock(cacheMutex);
    const auto [it, inserted] =
        resimCache.emplace(breakpoint, std::move(plan));
    if (inserted)
        QSA_OBS_COUNTER("runtime.head_cache.misses", 1);
    else
        QSA_OBS_COUNTER("runtime.head_cache.hits", 1);
    return it->second;
}

std::shared_ptr<const CdfSampler>
EnsembleEngine::shotSampler(const EnsembleSpec &spec)
{
    const auto key =
        std::make_tuple(spec.breakpoint, spec.seed, spec.qubits);
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = samplerCache.find(key);
        if (it != samplerCache.end()) {
            QSA_OBS_COUNTER("runtime.sampler_cache.hits", 1);
            return it->second;
        }
    }
    // Build outside the lock; racers may build twice but the builds
    // are identical and the first insertion wins.
    auto record = prefixState(spec.breakpoint, spec.seed);
    auto built = std::make_shared<const CdfSampler>(
        record->state.marginalProbs(spec.qubits));
    std::lock_guard<std::mutex> lock(cacheMutex);
    const auto [it, inserted] =
        samplerCache.emplace(key, std::move(built));
    if (inserted)
        QSA_OBS_COUNTER("runtime.sampler_cache.misses", 1);
    else
        QSA_OBS_COUNTER("runtime.sampler_cache.hits", 1);
    return it->second;
}

void
EnsembleEngine::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    prefixCache.clear();
    resimCache.clear();
    stateCache.clear();
    samplerCache.clear();
    stagesCache.clear();
}

void
EnsembleEngine::runTrials(const EnsembleSpec &spec,
                          const ResimPlan *plan,
                          const CdfSampler *sampler, std::size_t lo,
                          std::size_t hi, std::uint64_t *out) const
{
    const Rng master(spec.seed);
    if (spec.mode == SampleMode::Resimulate && plan->stages != nullptr) {
        // Tensor-split trials: each half re-simulates on its own
        // small state; the full-size state exists only from the
        // combining tail on. Draw order — low draws, then high, then
        // combo — is the monolithic program order, so the measurement
        // map and stream position match an unstaged run draw for
        // draw.
        const ResimStages &staged = *plan->stages;
        for (std::size_t m = lo; m < hi; ++m) {
            Rng rng = master.split(m);
            std::map<std::string, std::uint64_t> measurements;
            for (std::size_t d = 0; d < staged.lowDraws; ++d)
                rng.uniform();
            sim::StateVector low_state = staged.lowHead;
            circuit::runCircuitOn(staged.lowTail, low_state,
                                  measurements, rng);
            for (std::size_t d = 0; d < staged.highDraws; ++d)
                rng.uniform();
            sim::StateVector high_state = staged.highHead;
            circuit::runCircuitOn(staged.highTail, high_state,
                                  measurements, rng);
            sim::StateVector state = low_state.tensorWith(high_state);
            circuit::runCircuitOn(staged.layout->combo, state,
                                  measurements, rng);
            out[m - lo] = state.measureQubits(spec.qubits, rng);
        }
    } else if (spec.mode == SampleMode::Resimulate) {
        for (std::size_t m = lo; m < hi; ++m) {
            // Trial streams are keyed by the global trial index, so
            // shard boundaries cannot influence any outcome. The
            // draws the cached head's resets would have consumed are
            // discarded so the tail sees the same stream position an
            // uncached full re-simulation would.
            Rng rng = master.split(m);
            for (std::size_t d = 0; d < plan->headDraws; ++d)
                rng.uniform();
            sim::StateVector state = plan->headState;
            std::map<std::string, std::uint64_t> measurements;
            circuit::runCircuitOn(plan->tail, state, measurements,
                                  rng);
            out[m - lo] = state.measureQubits(spec.qubits, rng);
        }
    } else {
        for (std::size_t m = lo; m < hi; ++m) {
            Rng rng = master.split(m + 1);
            out[m - lo] = sampler->sample(rng.uniform());
        }
    }
}

std::vector<std::uint64_t>
EnsembleEngine::gather(const EnsembleSpec &spec)
{
    if (spec.shots == 0)
        return {};

    QSA_OBS_SPAN(span, "runtime.gather");
    span.arg("breakpoint", spec.breakpoint)
        .arg("shots", spec.shots)
        .arg("mode", spec.mode == SampleMode::Resimulate
                         ? "resimulate"
                         : "sample");
    QSA_OBS_TIMER(gather_time, "runtime.ensemble.gather");
    QSA_OBS_COUNTER("runtime.ensemble.trials", spec.shots);

    std::shared_ptr<const ResimPlan> plan;
    std::shared_ptr<const CdfSampler> sampler;
    if (spec.mode == SampleMode::Resimulate)
        plan = resimPlan(spec.breakpoint);
    else
        sampler = shotSampler(spec);

    std::vector<std::uint64_t> results(spec.shots);
    // From inside a worker (e.g. a BatchRunner unit) or for a single
    // shot the fan-out would run inline anyway — skip resolving a
    // pool entirely.
    if (ThreadPool::insideWorker() || spec.shots == 1) {
        runTrials(spec, plan.get(), sampler.get(), 0, spec.shots,
                  results.data());
        return results;
    }
    const std::size_t num_shards =
        std::min<std::size_t>(pool().concurrency(), spec.shots);
    pool().parallelFor(num_shards, [&](std::size_t s) {
        const auto [lo, hi] = shardRange(s, num_shards, spec.shots);
        runTrials(spec, plan.get(), sampler.get(), lo, hi,
                  results.data() + lo);
    });
    return results;
}

std::map<std::uint64_t, std::uint64_t>
EnsembleEngine::gatherHistogram(const EnsembleSpec &spec)
{
    if (spec.shots == 0)
        return {};

    QSA_OBS_SPAN(span, "runtime.gather_histogram");
    span.arg("breakpoint", spec.breakpoint)
        .arg("shots", spec.shots)
        .arg("mode", spec.mode == SampleMode::Resimulate
                         ? "resimulate"
                         : "sample");
    QSA_OBS_TIMER(gather_time, "runtime.ensemble.gather");
    QSA_OBS_COUNTER("runtime.ensemble.trials", spec.shots);

    std::shared_ptr<const ResimPlan> plan;
    std::shared_ptr<const CdfSampler> sampler;
    if (spec.mode == SampleMode::Resimulate)
        plan = resimPlan(spec.breakpoint);
    else
        sampler = shotSampler(spec);

    const std::size_t num_shards =
        ThreadPool::insideWorker()
            ? 1
            : std::min<std::size_t>(pool().concurrency(), spec.shots);
    std::vector<std::map<std::uint64_t, std::uint64_t>> shard_hists(
        num_shards);
    auto run_shard = [&](std::size_t s) {
        const auto [lo, hi] = shardRange(s, num_shards, spec.shots);
        // Fold trials into the shard histogram in fixed-size chunks so
        // peak memory really is O(distinct outcomes), not O(shots).
        constexpr std::size_t chunk = 8192;
        std::vector<std::uint64_t> buffer(std::min(chunk, hi - lo));
        auto &hist = shard_hists[s];
        for (std::size_t m = lo; m < hi; m += chunk) {
            const std::size_t end = std::min(m + chunk, hi);
            runTrials(spec, plan.get(), sampler.get(), m, end,
                      buffer.data());
            for (std::size_t k = 0; k < end - m; ++k)
                ++hist[buffer[k]];
        }
    };
    if (num_shards == 1)
        run_shard(0); // no pool to resolve for an inline gather
    else
        pool().parallelFor(num_shards, run_shard);

    // Merge in shard order: deterministic regardless of which worker
    // finished first (counts commute, but the convention is cheap and
    // makes the reduction order part of the contract).
    std::map<std::uint64_t, std::uint64_t> merged;
    for (const auto &hist : shard_hists)
        for (const auto &[value, count] : hist)
            merged[value] += count;
    return merged;
}

} // namespace qsa::runtime
