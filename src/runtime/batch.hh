/**
 * @file
 * Batch assertion checking across the ensemble pool.
 *
 * Production debugging sessions check many assertions over many program
 * variants (the bug-injection sweeps in bench/ are exactly that shape).
 * BatchRunner fans every (program, assertion) pair across one thread
 * pool at assertion granularity; each unit's ensemble generation then
 * runs inline on the worker it landed on (nested parallelFor calls run
 * inline — see pool.hh), so the pool is never oversubscribed and the
 * fan-out cannot deadlock.
 *
 * Results are positionally identical — and numerically bit-identical —
 * to checking each item serially with AssertionChecker::checkAll: both
 * paths route through qsa::runtime's EnsembleEngine with the same
 * per-trial stream derivation from CheckConfig::seed.
 */

#ifndef QSA_RUNTIME_BATCH_HH
#define QSA_RUNTIME_BATCH_HH

#include <memory>
#include <vector>

#include "assertions/checker.hh"
#include "runtime/pool.hh"

namespace qsa::runtime
{

/** One unit of batch work: a program plus the assertions to check. */
struct BatchItem
{
    /** Program under test; must outlive the checkAll call. */
    const circuit::Circuit *program = nullptr;

    /** Assertions to check against it. */
    std::vector<assertions::AssertionSpec> specs;

    /**
     * Ensemble/test configuration for this item. Note: numThreads is
     * replaced by the batch's own scheduling — with several units,
     * each unit's ensemble generation runs inline (serially) on the
     * batch worker it lands on; with exactly one unit, the ensemble
     * fans its trials across the runner's full concurrency instead.
     * Outcomes are numThreads-invariant, so this changes nothing but
     * scheduling.
     */
    assertions::CheckConfig config;
};

/** See file comment. */
class BatchRunner
{
  public:
    /**
     * @param num_threads pool concurrency for the fan-out: 0 = the
     *        process-wide shared pool, otherwise a dedicated pool.
     */
    explicit BatchRunner(unsigned num_threads = 0);

    ~BatchRunner();

    /**
     * Check every spec of every item; result[i][j] is the outcome of
     * items[i].specs[j].
     */
    std::vector<std::vector<assertions::AssertionOutcome>>
    checkAll(const std::vector<BatchItem> &items);

    /**
     * Convenience fan-out: the same assertion list and configuration
     * applied to many programs (e.g. one bug-injected variant each);
     * result[i][j] is specs[j] checked on *programs[i].
     */
    std::vector<std::vector<assertions::AssertionOutcome>>
    checkAll(const std::vector<const circuit::Circuit *> &programs,
             const std::vector<assertions::AssertionSpec> &specs,
             const assertions::CheckConfig &config =
                 assertions::CheckConfig());

    /**
     * Fan one checker's specs across this runner's pool, sharing the
     * checker's engine (truncated-circuit and prefix-state caches)
     * across all units — the plan-execution path behind both
     * AssertionChecker::checkAll and session::Session::run. Each
     * unit's own ensemble generation runs inline on the worker it
     * lands on (nested parallelFor, pool.hh); a single spec is
     * checked directly so its ensemble keeps trial-level fan-out.
     * With `escalation` set, every unit runs the sequential
     * ensemble-doubling test of AssertionChecker::checkEscalated
     * instead of a fixed-size check. With `ensemble_sizes` set (same
     * length as `specs`), a non-zero entry overrides that one spec's
     * ensemble size — replacing the checker config's size for a plain
     * check, or the policy's initial size (with the cap raised to at
     * least the override) for an escalated one. result[j] is
     * specs[j]'s outcome; outcomes are bit-identical to a serial
     * per-spec loop.
     */
    std::vector<assertions::AssertionOutcome>
    checkAll(const assertions::AssertionChecker &checker,
             const std::vector<assertions::AssertionSpec> &specs,
             const assertions::EscalationPolicy *escalation = nullptr,
             const std::vector<std::size_t> *ensemble_sizes = nullptr);

    /** The pool the assertion units run on. */
    ThreadPool &pool() { return *poolPtr; }

  private:
    std::unique_ptr<ThreadPool> ownedPool;
    ThreadPool *poolPtr;
};

} // namespace qsa::runtime

#endif // QSA_RUNTIME_BATCH_HH
