/**
 * @file
 * Shard-oriented thread pool for ensemble execution.
 *
 * The paper ran its ensembles as independent simulator jobs on a
 * cluster; qsa::runtime reproduces that shape on one machine with a
 * fixed pool of workers. The pool deliberately has no work stealing and
 * no futures — the only primitive is parallelFor(n, body), which hands
 * out indices [0, n) to the workers (the calling thread participates)
 * and blocks until every index has been processed.
 *
 * Determinism contract: parallelFor guarantees each index runs exactly
 * once, but in no particular order and on no particular thread. Callers
 * that need thread-count-invariant results must therefore make the work
 * for index i depend only on i (the ensemble engine derives one RNG
 * stream per trial index, never per worker).
 *
 * Nested parallelFor calls — a worker's body calling parallelFor, on
 * any pool — run inline on the calling worker. That makes composition
 * (BatchRunner fanning out assertion checks whose ensemble generation
 * is itself parallelised) deadlock-free by construction.
 */

#ifndef QSA_RUNTIME_POOL_HH
#define QSA_RUNTIME_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qsa::runtime
{

/** See file comment. */
class ThreadPool
{
  public:
    /**
     * @param num_threads total concurrency including the calling
     *        thread (the pool spawns num_threads - 1 workers);
     *        0 means the hardware concurrency.
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /**
     * Safe while work is still arriving: an in-flight job is drained
     * to completion, posters blocked waiting for the pool observe the
     * shutdown and run their job inline on their own thread, and only
     * then are the workers joined. Destruction never drops posted
     * work and never deadlocks against concurrent parallelFor calls
     * (tests/test_shutdown.cc churns pools under load to pin this).
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (helper workers + the calling thread). */
    unsigned concurrency() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Run body(i) exactly once for every i in [0, n), distributing
     * indices across the workers and the calling thread; blocks until
     * all n calls have returned. Safe to call from multiple external
     * threads (calls are serialised) and from inside a worker (runs
     * inline, see file comment).
     *
     * A body that throws does not wedge the pool: the first exception
     * is captured, later indices may be skipped, and once every
     * claimed call has returned the exception is rethrown to the
     * parallelFor caller — matching what the inline (serial) path
     * does naturally.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * True when the calling thread is currently executing a
     * parallelFor body (of any pool). Lets layered code skip
     * fan-out work — e.g. the ensemble engine avoids resolving a
     * pool at all for gathers that would run inline anyway.
     */
    static bool insideWorker();

    /**
     * Process-wide pool sized to the hardware concurrency, created on
     * first use. The default backend for ensembles and batches.
     */
    static ThreadPool &shared();

    /**
     * The library's pool-selection convention in one place:
     * num_threads == 0 resolves to shared(); any other value spawns a
     * dedicated pool of that concurrency into `owned`.
     */
    static ThreadPool &resolve(unsigned num_threads,
                               std::unique_ptr<ThreadPool> &owned);

  private:
    /** One parallelFor invocation: an atomically drained index range. */
    struct Job
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
        std::mutex doneMutex;
        std::condition_variable done;

        /** First exception thrown by a body; rethrown to the poster. */
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    std::vector<std::thread> workers;
    std::mutex poolMutex;
    std::condition_variable wake;
    std::condition_variable idle;

    /** Destructor-side rendezvous: signalled when a blocked poster
     *  leaves or the in-flight job clears during teardown. */
    std::condition_variable drained;

    /** Posters currently blocked in parallelFor's idle wait. */
    std::size_t postersWaiting = 0;

    std::shared_ptr<Job> current;
    bool stopping = false;

    void workerLoop();
    static void drainJob(Job &job);
};

} // namespace qsa::runtime

#endif // QSA_RUNTIME_POOL_HH
