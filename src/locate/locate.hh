/**
 * @file
 * Statistical bug localization (qsa::locate).
 *
 * The paper's assertions *detect* a bug at programmer-chosen
 * breakpoints; the debugging loop its Section 5 case studies narrate —
 * rerun with more assertions until the first failing one brackets the
 * defect — is manual. BugLocator automates that loop as a statistical
 * search over instruction boundaries, following the bug-locating-by-
 * statistical-testing idea of Sato & Katsube (2024) and the mechanical
 * assertion refinement of Rovara et al. (2024):
 *
 *  1. breakpoints are inserted programmatically at every instruction
 *     boundary (Circuit::withBoundaryBreakpoints), or existing
 *     ComputeScope labels are reused;
 *  2. an expected-state predicate is derived per boundary from the
 *     *reference* program — a classical value tracked by exact
 *     semi-classical simulation, a distribution otherwise, or an
 *     entangled/product kind inherited from scope structure
 *     (locate/predicates.hh);
 *  3. an adaptive binary search probes O(log n) boundaries, each
 *     probe an ensemble assertion whose trials fan across the
 *     qsa::runtime pool (LinearScan batches additionally fan
 *     probe-wise through runtime::BatchRunner), so a single
 *     localization run saturates the pool; both sides of the
 *     converged bracket are re-adjudicated on escalated ensembles
 *     (assertions::EscalationPolicy) before the verdict is final.
 *
 * Two probe families are offered:
 *
 *  - *Mirror probes* (locate()): the probe program is the suspect
 *    prefix followed by the adjoint of the reference prefix, asserted
 *    classically equal to the initial state. Any behavioural
 *    divergence — including pure phase errors invisible to
 *    computational-basis marginals — lowers the probe fidelity below
 *    one, so the bracketed interval provably contains a diverging
 *    instruction. Requires the compared region to be unitary.
 *
 *  - *Predicate probes* (locateByPredicates()): the suspect program is
 *    instrumented at every boundary and each probe tests the oracle's
 *    marginal predicate for one register. Cheaper per probe, tolerant
 *    of mid-program resets (bug type 1 fixtures), blind to phase-only
 *    divergence until it reaches the measured marginal.
 *
 * The LinearScan strategy checks *every* boundary in one batch under
 * Holm-Bonferroni family-wise control — the statistically-sound
 * exhaustive baseline bench_locate compares against: a scan cannot
 * adjudicate "first failing" under family-wise control until the whole
 * family's p-values exist, whereas the adaptive search needs
 * exponentially fewer probes.
 *
 * Mid-circuit measurement: under the default SampleFinalState probe
 * ensembles both families clamp the probeable range at the first
 * Measure (one final-state sample cannot represent an outcome
 * mixture). Selecting LocateConfig::mode = EnsembleMode::Resimulate
 * lifts the clamp — each probe re-simulates the truncated program
 * once per ensemble member (exact under measurement; the runtime's
 * cached deterministic head keeps the per-trial cost to the region
 * past the first measure):
 *
 *  - predicate probes compare each boundary against the oracle's
 *    outcome-*mixture* marginal (PredicateOracle tracks measurement
 *    branches exactly, conditioning classically-controlled
 *    instructions on each branch's recorded outcomes);
 *
 *  - mirror probes become *segment* mirrors: the adjoint of the
 *    reference is appended from the last non-invertible instruction
 *    (measure/reset) before the probe boundary — conditioned gates
 *    invert under their own condition — and the result is asserted
 *    against the oracle's full-space mixture predicate at that
 *    segment start. Phase sensitivity is retained within each
 *    measure-free segment; divergence at a segment start shows up in
 *    the mixture distribution itself. Boundaries where the two
 *    programs' measurement/reset *structure* differs stay clamped
 *    (past such a point the mirror cannot be built).
 *
 * For measurement-free programs Resimulate mode probes the same
 * boundaries with the same specs as the default mode, so the search
 * trajectory and bracket are preserved (probe ensembles are drawn
 * through a different stream layout, so p-values differ numerically).
 *
 * Probe families and witness soundness: every computational-basis
 * probe is blind to divergence whose only trace is a relative phase
 * *until* some later instruction rotates that phase into an
 * amplitude — past a measurement, where segment mirrors fall back to
 * mixture-marginal witnesses, such a defect is bracketed at the
 * rotation (the verify step), not at its site. Two phase-sensitive
 * families close that gap (LocateConfig::family):
 *
 *  - *Rotated-basis predicate probes* (ProbeFamily::RotatedMarginal):
 *    each boundary is probed in the Z, X and Y frames at once — the
 *    truncated program gets a basis-change epilogue per frame
 *    (predicates.hh) and the oracle's predicate is transported into
 *    that frame. For a single-qubit register the three marginals
 *    determine the Bloch vector completely; phase divergence on the
 *    probed register is visible the instruction it appears. Still
 *    not a monotone witness (later instructions can rotate the
 *    divergence off the probed register).
 *
 *  - *Swap-test probes* (ProbeFamily::SwapTest): the probe program
 *    runs the suspect prefix on the low qubit half, the reference
 *    prefix (labels renamed) on the high half, and an
 *    ancilla-controlled SWAP comparator between them; the ancilla
 *    reads 0 with probability (1 + tr(rho sigma)) / 2, asserted as
 *    the Bernoulli the OverlapOracle predicts from the reference's
 *    mixture purity. The overlap deficit is invariant under common
 *    unitary evolution, so within any measure-free segment this
 *    witness is *monotone* — sound for non-persistent divergence —
 *    at the cost of simulating 2n+1 qubits per probe.
 *
 * Static pruning (qsa::analyze): before any probe runs, the locator
 * asks `analyze::equivalentPrefixBoundary` for the largest boundary E
 * up to which the suspect and reference prefixes are *provably*
 * equivalent — by structural instruction equality or by matching
 * Clifford-segment conjugation tableaux. Every probe family's
 * statistic is invariant under a common prefix acting identically on
 * the initial state, so boundaries <= E are certified passing and the
 * search starts its bracket at E instead of 0 (LinearScan skips them
 * outright). LocateConfig::staticPruning turns the pre-pass off;
 * LocalizationReport::prunedBoundaries records the win.
 *
 *  - ProbeFamily::Auto is the per-segment witness-selection layer:
 *    run the cheap segment-mirror search first; when its verdict is
 *    *phase-ambiguous* — the deciding probe failed only through a
 *    computational-marginal component whose segment unwind passed,
 *    or every probe passed even though post-measurement segments
 *    carry no phase-sound witness — escalate to a swap-test search
 *    and let the family with the sound witness adjudicate the final
 *    bracket (LocalizationReport::decidedBy).
 */

#ifndef QSA_LOCATE_LOCATE_HH
#define QSA_LOCATE_LOCATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assertions/spec.hh"
#include "circuit/circuit.hh"
#include "circuit/register.hh"
#include "locate/predicates.hh"

namespace qsa::locate
{

/** How the breakpoint sequence is searched. */
enum class Strategy
{
    /** Bracket the first failing boundary in O(log n) probes. */
    AdaptiveBinarySearch,

    /** Probe every boundary in one batch (the exhaustive baseline). */
    LinearScan,
};

/**
 * Which probe family adjudicates a boundary (see the file comment's
 * witness-soundness taxonomy). SegmentMirror / SwapTest / Auto drive
 * locate() on the full qubit space; MixtureMarginal / RotatedMarginal
 * drive locateByPredicates() on one register.
 */
enum class ProbeFamily
{
    /** Mirror (default) / segment-mirror probes: phase-sensitive
     *  within a measure-free segment, computational-basis witnesses
     *  past measurements. */
    SegmentMirror,

    /** Oracle marginal predicates on one register, computational
     *  basis only (the cheapest probes; blind to phase). */
    MixtureMarginal,

    /** Marginal predicates probed in the Z, X and Y frames via
     *  basis-change epilogues (phase-sensitive on the register). */
    RotatedMarginal,

    /** Ancilla-controlled-SWAP comparator against an embedded
     *  reference copy; monotone witness within unitary segments. */
    SwapTest,

    /** Per-segment witness selection: segment mirrors first,
     *  swap-test escalation when the verdict is phase-ambiguous. */
    Auto,
};

/** Human-readable probe-family name. */
std::string probeFamilyName(ProbeFamily family);

/** Localization configuration. */
struct LocateConfig
{
    /** Search strategy. */
    Strategy strategy = Strategy::AdaptiveBinarySearch;

    /**
     * Probe family. locate() accepts SegmentMirror, SwapTest, and
     * Auto (full-space comparators); the one-register
     * locateByPredicates() accepts MixtureMarginal, RotatedMarginal,
     * SwapTest, and Auto, with the comparator scoped to the register
     * — the sensitive form past measurements. SegmentMirror, the
     * config default, selects the classic family per entry point
     * (mirrors for locate(), mixture marginals for
     * locateByPredicates), so existing callers keep their probes.
     */
    ProbeFamily family = ProbeFamily::SegmentMirror;

    /**
     * Probe ensemble generation mode. SampleFinalState (default)
     * keeps the fast sampling path and clamps the probeable range at
     * the first Measure; Resimulate re-runs each truncated probe once
     * per trial, lifting the clamp so semiclassical programs localize
     * past mid-circuit measurement (see the file comment).
     */
    assertions::EnsembleMode mode =
        assertions::EnsembleMode::SampleFinalState;

    /** Measurements per exploratory probe. */
    std::size_t ensembleSize = 64;

    /**
     * Measurements for confirmation probes at the converged bracket
     * (and the escalation cap for inconclusive probes).
     */
    std::size_t maxEnsembleSize = 2048;

    /** Per-probe significance level. */
    double alpha = 0.01;

    /**
     * Escalation pass threshold for inconclusive probes
     * (assertions::EscalationPolicy::passThreshold semantics): p in
     * (alpha, passThreshold) doubles the probe ensemble.
     */
    double passThreshold = 0.30;

    /** Master seed; probe ensembles derive per-boundary streams. */
    std::uint64_t seed = 0x10ca7eb6;

    /**
     * Reference-oracle derivation mode (predicates.hh). Auto
     * (default) derives exactly and falls back to Monte-Carlo
     * sampled marginals when the program's measurement-branch
     * mixture overflows the exact cap — the only way to localize
     * wide-measurement programs. Exact restores the
     * throw-on-overflow behaviour; Sampled forces Monte-Carlo even
     * below the cap. Swap-test probes always derive their purities
     * exactly (a sampled purity estimator needs two-copy trials the
     * OverlapOracle does not implement), so SwapTest/Auto families
     * keep the exact cap on the comparator path.
     */
    OracleMode oracleMode = OracleMode::Auto;

    /**
     * Trial budget per sampled oracle derivation; 0 selects
     * OracleOptions' default.
     */
    std::size_t oracleTrials = 0;

    /**
     * Worker threads (CheckConfig::numThreads semantics: 0 = shared
     * pool). Probe outcomes are bit-identical for any value.
     */
    unsigned numThreads = 0;

    /**
     * Run the Clifford/structural boundary-equivalence pre-pass
     * (analyze::equivalentPrefixBoundary) and start the search above
     * the certified-equivalent prefix. Purely static — no probe, no
     * simulation — and sound for every probe family, so it defaults
     * on; disable to reproduce the unpruned search trajectory.
     */
    bool staticPruning = true;

    /**
     * Holm-Bonferroni family-wise control over the LinearScan probe
     * family (the adaptive search controls errors sequentially via
     * escalation instead). Scope-inherited Entangled probes are
     * exempt: their pass is the rejection, so the correction would
     * cut the other way.
     */
    bool holmBonferroni = true;

    /**
     * Fuse adjacent small unitaries in every probe prefix before
     * ensemble fan-out (CheckConfig::fuseGates). Identical verdicts,
     * fewer amp-touches per trial; off only for A/B comparison
     * against the naive kernels.
     */
    bool fuseGates = true;

    /**
     * Simulate swap-test probes half-by-half: the suspect prefix and
     * the embedded reference prefix each run on their own 2^n state
     * and tensor together only at the ancilla-controlled-SWAP
     * comparator (CheckConfig::tensorSplit), cutting per-trial probe
     * cost from 2^(2n+1) toward ~2^n. Identical overlap statistics
     * and brackets; disable to force monolithic probe simulation.
     */
    bool tensorSwapProbes = true;
};

/** Evidence from one probe: where, what, and how decisive. */
struct ProbeRecord
{
    /** Instruction boundary probed. */
    std::size_t boundary = 0;

    /** Assertion kind of the probe. */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Classical;

    /** Measurements behind the final verdict (post escalation). */
    std::size_t ensembleSize = 0;

    /** p-value of the final adjudication. */
    double pValue = 1.0;

    /** True when the probe's assertion failed. */
    bool failed = false;

    /** Family of the probe that produced this record. */
    ProbeFamily family = ProbeFamily::SegmentMirror;

    /**
     * True when a failed dual mirror probe rejected only through its
     * computational-marginal component while its phase-sensitive
     * segment unwind passed: the divergence was transported here from
     * an earlier instruction of the same (or an earlier) segment, so
     * the boundary brackets where the divergence became *visible*,
     * not necessarily where it arose. ProbeFamily::Auto escalates to
     * swap-test probes on this signal.
     */
    bool phaseAmbiguous = false;
};

/** Outcome of a localization run. */
struct LocalizationReport
{
    /** True when a statistically failing boundary was bracketed. */
    bool bugFound = false;

    /** Largest probed boundary consistent with the reference. */
    std::size_t lastPassing = 0;

    /** Smallest probed boundary inconsistent with the reference. */
    std::size_t firstFailing = 0;

    /** Suspect instruction range [begin, end) in the tested program. */
    std::size_t suspectBegin() const { return lastPassing; }
    std::size_t suspectEnd() const { return firstFailing; }

    /** Mnemonics of the suspect instruction range. */
    std::string suspectGates;

    /** Every probe adjudicated, in execution order. */
    std::vector<ProbeRecord> probes;

    /** Total measurements across the final probe adjudications. */
    std::size_t totalMeasurements = 0;

    /**
     * Probe family whose witness adjudicated the final bracket (for
     * ProbeFamily::Auto this is SwapTest when the search escalated
     * and the swap-test probes re-bracketed the defect).
     */
    ProbeFamily decidedBy = ProbeFamily::SegmentMirror;

    /**
     * True when an Auto search escalated from segment mirrors to
     * swap-test probes (the mirror verdict was phase-ambiguous).
     */
    bool escalatedToSwapTest = false;

    /**
     * Boundaries the static boundary-equivalence pre-pass certified
     * as passing without a probe (the search's starting lower bound;
     * 0 when pruning is disabled or the programs diverge
     * structurally at the first instruction).
     */
    std::size_t prunedBoundaries = 0;

    /** One-paragraph human-readable account. */
    std::string summary() const;
};

/**
 * See file comment. A locator is bound to one (suspect, reference)
 * program pair on the same qubit space.
 */
class BugLocator
{
  public:
    /**
     * @param suspect the program whose end-to-end assertion fails
     * @param reference the trusted program it should agree with
     * @param config search/ensemble configuration
     */
    BugLocator(const circuit::Circuit &suspect,
               const circuit::Circuit &reference,
               const LocateConfig &config = LocateConfig());

    /**
     * Localize over the full qubit space with the configured family:
     * mirror probes (default; phase-sensitive where the compared
     * region is unitary), full-space swap-test probes, or Auto
     * (mirrors first, swap-test escalation on a phase-ambiguous
     * verdict).
     */
    LocalizationReport locate() const;

    /**
     * Localize on one register with the configured family: the
     * oracle's outcome-marginal predicates (default), the
     * rotated-basis Z/X/Y marginal triple, register-scoped swap-test
     * comparator probes, or Auto — the cheap marginal search first,
     * escalating to swap-test probes when a decisive swap probe at
     * the marginal bracket's lastPassing boundary (or at the top
     * boundary, when nothing failed) shows the divergence predates
     * what any computational marginal can see.
     */
    LocalizationReport
    locateByPredicates(const circuit::QubitRegister &reg) const;

    /**
     * As locateByPredicates(reg_a), additionally inheriting
     * entangled/product probe kinds on (reg_a, reg_b) at ComputeScope
     * boundaries of the suspect program.
     */
    LocalizationReport
    locateByPredicates(const circuit::QubitRegister &reg_a,
                       const circuit::QubitRegister &reg_b) const;

  private:
    circuit::Circuit suspect;
    circuit::Circuit reference;
    LocateConfig config;
};

} // namespace qsa::locate

#endif // QSA_LOCATE_LOCATE_HH
