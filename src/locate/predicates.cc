/**
 * @file
 * PredicateOracle / OverlapOracle implementation.
 */

#include "locate/predicates.hh"

#include <algorithm>
#include <cmath>

#include <sstream>

#include "circuit/executor.hh"
#include "circuit/scopes.hh"
#include "common/artifacts.hh"
#include "common/bits.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/obs.hh"
#include "sim/gates.hh"

namespace qsa::locate
{

namespace
{

/** Tolerance for classifying exact marginals. */
constexpr double kProbTol = 1e-9;

/**
 * Cap on the measurement-branch enumeration: 2^12 outcome histories
 * is far past any semiclassical program in the repo (one recycled
 * control qubit measured t times is 2^t branches) while still
 * bounding a pathological all-qubits-measured-repeatedly program.
 * Overflow is a designed fatal naming the measuring instruction
 * (circuit::stepBranches), never a silent truncation.
 */
constexpr std::size_t kMaxBranches = 4096;

BoundaryPredicate
classify(const std::vector<double> &probs)
{
    BoundaryPredicate pred;

    std::size_t argmax = 0;
    double maxp = 0.0;
    for (std::size_t v = 0; v < probs.size(); ++v) {
        if (probs[v] > maxp) {
            maxp = probs[v];
            argmax = v;
        }
    }
    if (maxp >= 1.0 - kProbTol) {
        pred.kind = assertions::AssertionKind::Classical;
        pred.expectedValue = argmax;
        return pred;
    }

    const double uniform = 1.0 / probs.size();
    const bool is_uniform =
        std::all_of(probs.begin(), probs.end(), [&](double p) {
            return std::abs(p - uniform) <= kProbTol;
        });
    if (is_uniform) {
        pred.kind = assertions::AssertionKind::Superposition;
        return pred;
    }

    pred.kind = assertions::AssertionKind::Distribution;
    pred.expectedProbs = probs;
    return pred;
}

/**
 * Weighted register marginal over a measurement-branch mixture, read
 * in `frame`: each branch state is rotated by the frame's
 * basis-change epilogue before marginalisation — exactly the
 * distribution a probe carrying frameEpilogue(reg, frame) samples.
 */
std::vector<double>
mixtureMarginal(const std::vector<circuit::ExecutionBranch> &branches,
                const std::vector<unsigned> &qubits, Frame frame)
{
    std::vector<double> probs(pow2(qubits.size()), 0.0);
    for (const auto &branch : branches) {
        std::vector<double> marginal;
        if (frame == Frame::Z) {
            marginal = branch.state.marginalProbs(qubits);
        } else {
            sim::StateVector rotated = branch.state;
            for (unsigned q : qubits) {
                if (frame == Frame::Y)
                    rotated.applyGate(sim::gates::sdg(), q);
                rotated.applyGate(sim::gates::h(), q);
            }
            marginal = rotated.marginalProbs(qubits);
        }
        for (std::size_t v = 0; v < probs.size(); ++v)
            probs[v] += branch.weight * marginal[v];
    }
    return probs;
}

/**
 * Mixture purity tr(rho^2), reduced to `qubits` (empty = the full
 * space, where the pairwise-fidelity form avoids materialising a
 * 2^n x 2^n density matrix).
 */
double
mixturePurity(const std::vector<circuit::ExecutionBranch> &branches,
              const std::vector<unsigned> &qubits)
{
    if (qubits.empty()) {
        double purity = 0.0;
        for (std::size_t i = 0; i < branches.size(); ++i) {
            purity += branches[i].weight * branches[i].weight;
            for (std::size_t j = i + 1; j < branches.size(); ++j) {
                purity += 2.0 * branches[i].weight *
                          branches[j].weight *
                          branches[i].state.fidelity(
                              branches[j].state);
            }
        }
        return purity;
    }

    // Weighted reduced density matrix, then tr(rho^2) = sum |rho_ij|^2
    // (rho is Hermitian).
    const std::uint64_t dim = pow2(qubits.size());
    sim::CMatrix rho(dim);
    for (const auto &branch : branches) {
        const sim::CMatrix branch_rho =
            branch.state.reducedDensityMatrix(qubits);
        for (std::uint64_t r = 0; r < dim; ++r) {
            for (std::uint64_t c = 0; c < dim; ++c) {
                rho.at(r, c) +=
                    branch.weight * branch_rho.at(r, c);
            }
        }
    }
    double purity = 0.0;
    for (std::uint64_t r = 0; r < dim; ++r) {
        for (std::uint64_t c = 0; c < dim; ++c)
            purity += std::norm(rho.at(r, c));
    }
    return purity;
}

/**
 * Canonical store key for a predicate-oracle derivation: payload
 * schema version, reference content hash, probed qubits, recorded
 * boundary set ("all" for the dense form), frames in probe order.
 * Everything the derivation depends on is in the key, so a hit is
 * usable as-is and a version bump invalidates every old entry.
 */
std::string
predicateStoreKey(const circuit::Circuit &reference,
                  const std::vector<unsigned> &qubits,
                  const std::vector<std::size_t> *boundaries,
                  const std::vector<Frame> &frames)
{
    std::ostringstream os;
    os << "v1:" << std::hex << reference.contentHash() << std::dec
       << ":q";
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? "," : "") << qubits[i];
    os << ":b";
    if (boundaries == nullptr) {
        os << "all";
    } else {
        std::vector<std::size_t> sorted = *boundaries;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i)
            os << (i ? "," : "") << sorted[i];
    }
    os << ":f";
    for (Frame frame : frames)
        os << frameName(frame);
    return os.str();
}

const char *
predicateKindTag(assertions::AssertionKind kind)
{
    switch (kind) {
      case assertions::AssertionKind::Classical: return "classical";
      case assertions::AssertionKind::Superposition:
          return "superposition";
      default: return "distribution";
    }
}

} // anonymous namespace

std::string
frameName(Frame frame)
{
    switch (frame) {
      case Frame::Z: return "Z";
      case Frame::X: return "X";
      case Frame::Y: return "Y";
    }
    panic("unknown measurement frame");
}

void
appendFrameEpilogue(circuit::Circuit &circ,
                    const std::vector<unsigned> &qubits, Frame frame)
{
    if (frame == Frame::Z)
        return;
    for (unsigned q : qubits) {
        if (frame == Frame::Y)
            circ.sdg(q);
        circ.h(q);
    }
}

PredicateOracle::PredicateOracle(const circuit::Circuit &reference,
                                 const circuit::QubitRegister &r,
                                 std::uint64_t seed)
    : reg(r)
{
    (void)seed;
    build(reference, nullptr, {Frame::Z});
}

PredicateOracle::PredicateOracle(
    const circuit::Circuit &reference,
    const circuit::QubitRegister &r, std::uint64_t seed,
    const std::vector<std::size_t> &boundaries)
    : reg(r)
{
    (void)seed;
    build(reference, &boundaries, {Frame::Z});
}

PredicateOracle::PredicateOracle(
    const circuit::Circuit &reference,
    const circuit::QubitRegister &r, std::uint64_t seed,
    const std::vector<std::size_t> *boundaries,
    const std::vector<Frame> &frames)
    : reg(r)
{
    (void)seed;
    build(reference, boundaries, frames);
}

namespace
{

/** Serialize a predicate map for the oracle store (see build()). */
std::string
serializePredicates(
    std::size_t total,
    const std::map<std::pair<std::size_t, Frame>, BoundaryPredicate>
        &preds)
{
    json::Value doc = json::Value::object();
    doc.set("v", json::Value::integer(1));
    doc.set("total", json::Value::integer(total));
    json::Value entries = json::Value::array();
    for (const auto &entry : preds) {
        const BoundaryPredicate &pred = entry.second;
        json::Value e = json::Value::object();
        e.set("b", json::Value::integer(entry.first.first));
        e.set("f", json::Value::string(frameName(entry.first.second)));
        e.set("k",
              json::Value::string(predicateKindTag(pred.kind)));
        if (pred.kind == assertions::AssertionKind::Classical)
            e.set("value", json::Value::integer(pred.expectedValue));
        if (pred.kind == assertions::AssertionKind::Distribution) {
            json::Value probs = json::Value::array();
            for (double p : pred.expectedProbs)
                probs.push(json::Value::number(p));
            e.set("probs", std::move(probs));
        }
        entries.push(std::move(e));
    }
    doc.set("entries", std::move(entries));
    return doc.dump();
}

/**
 * Parse a stored predicate payload back into a map. Returns false on
 * any shape mismatch — the caller then just re-derives.
 */
bool
restorePredicates(
    const std::string &payload, std::size_t total,
    std::map<std::pair<std::size_t, Frame>, BoundaryPredicate> *out)
{
    json::Value doc;
    if (!json::Value::parse(payload, &doc))
        return false;
    try {
        if (doc.find("v") == nullptr ||
            doc.find("v")->asUint64() != 1 ||
            doc.find("total") == nullptr ||
            doc.find("total")->asUint64() != total)
            return false;
        const json::Value *entries = doc.find("entries");
        if (entries == nullptr || !entries->isArray())
            return false;
        std::map<std::pair<std::size_t, Frame>, BoundaryPredicate>
            restored;
        for (std::size_t i = 0; i < entries->size(); ++i) {
            const json::Value &e = entries->at(i);
            const json::Value *b = e.find("b");
            const json::Value *f = e.find("f");
            const json::Value *k = e.find("k");
            if (b == nullptr || f == nullptr || k == nullptr)
                return false;
            Frame frame = Frame::Z;
            if (f->asString() == "X")
                frame = Frame::X;
            else if (f->asString() == "Y")
                frame = Frame::Y;
            else if (f->asString() != "Z")
                return false;
            BoundaryPredicate pred;
            if (k->asString() == "classical") {
                pred.kind = assertions::AssertionKind::Classical;
                const json::Value *value = e.find("value");
                if (value == nullptr)
                    return false;
                pred.expectedValue = value->asUint64();
            } else if (k->asString() == "superposition") {
                pred.kind = assertions::AssertionKind::Superposition;
            } else if (k->asString() == "distribution") {
                pred.kind = assertions::AssertionKind::Distribution;
                const json::Value *probs = e.find("probs");
                if (probs == nullptr || !probs->isArray())
                    return false;
                for (std::size_t p = 0; p < probs->size(); ++p)
                    pred.expectedProbs.push_back(
                        probs->at(p).asDouble());
            } else {
                return false;
            }
            restored.emplace(std::make_pair(b->asUint64(), frame),
                             std::move(pred));
        }
        *out = std::move(restored);
        return true;
    } catch (const json::TypeError &) {
        return false;
    }
}

} // anonymous namespace

void
PredicateOracle::build(const circuit::Circuit &reference,
                       const std::vector<std::size_t> *boundaries,
                       const std::vector<Frame> &frames)
{
    fatal_if(reg.width() == 0,
             "predicate oracle needs a non-empty register");
    fatal_if(reg.width() > 24,
             "register too wide for dense boundary predicates");
    fatal_if(frames.empty(),
             "predicate oracle needs at least one measurement frame");

    totalBoundaries = reference.size() + 1;
    std::vector<std::size_t> sorted;
    if (boundaries != nullptr) {
        sorted = *boundaries;
        std::sort(sorted.begin(), sorted.end());
    }
    const auto wanted = [&](std::size_t b) {
        return boundaries == nullptr ||
               std::binary_search(sorted.begin(), sorted.end(), b);
    };

    // A persistent store (when installed) short-circuits the whole
    // derivation: a restored map must cover exactly the wanted
    // (boundary, frame) grid, otherwise it is treated as a miss.
    common::ArtifactStore *store = common::artifactStore();
    std::string key;
    if (store != nullptr) {
        key = predicateStoreKey(reference, reg.qubits(), boundaries,
                                frames);
        std::string payload;
        if (store->load("predicates", key, &payload) &&
            restorePredicates(payload, totalBoundaries, &preds)) {
            bool covered = true;
            for (std::size_t b = 0;
                 covered && b < totalBoundaries; ++b) {
                if (!wanted(b))
                    continue;
                for (Frame frame : frames)
                    covered = covered &&
                              preds.count({b, frame}) != 0;
            }
            if (covered)
                return;
            preds.clear();
        }
    }

    {
        // Timed so a warm store shows up as a ~0 derive total.
        QSA_OBS_TIMER(derive, "locate.oracle.derive");

        const auto record =
            [&](std::size_t b,
                const std::vector<circuit::ExecutionBranch>
                    &branches) {
                for (Frame frame : frames) {
                    preds.emplace(std::make_pair(b, frame),
                                  classify(mixtureMarginal(
                                      branches, reg.qubits(),
                                      frame)));
                }
            };

        // One incremental measurement-resolved pass: advance the
        // branch mixture through instruction k, then record the
        // weighted register marginal(s) as the boundary-(k+1)
        // predicate.
        std::vector<circuit::ExecutionBranch> branches;
        branches.push_back(circuit::ExecutionBranch{
            1.0, sim::StateVector(reference.numQubits()), {}});

        if (wanted(0))
            record(0, branches);
        for (std::size_t k = 0; k < reference.size(); ++k) {
            circuit::stepBranches(reference,
                                  reference.instructions()[k],
                                  branches, kMaxBranches);
            if (wanted(k + 1))
                record(k + 1, branches);
        }
    }

    if (store != nullptr)
        store->store("predicates", key,
                     serializePredicates(totalBoundaries, preds));
}

const BoundaryPredicate &
PredicateOracle::at(std::size_t boundary, Frame frame) const
{
    fatal_if(boundary >= totalBoundaries, "boundary ", boundary,
             " beyond the reference program (", totalBoundaries - 1,
             " instructions)");
    const auto it = preds.find({boundary, frame});
    fatal_if(it == preds.end(), "boundary ", boundary, " (frame ",
             frameName(frame), ") was not recorded by this oracle");
    return it->second;
}

assertions::AssertionSpec
PredicateOracle::specAt(std::size_t boundary,
                        const std::string &breakpoint, double alpha,
                        Frame frame) const
{
    const BoundaryPredicate &pred = at(boundary, frame);

    assertions::AssertionSpec spec;
    spec.kind = pred.kind;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.expectedValue = pred.expectedValue;
    spec.expectedProbs = pred.expectedProbs;
    spec.alpha = alpha;
    spec.name = "predicate@" + std::to_string(boundary);
    if (frame != Frame::Z)
        spec.name += "[" + frameName(frame) + "]";
    return spec;
}

namespace
{

/** Canonical overlap-oracle store key (see predicateStoreKey). */
std::string
overlapStoreKey(const circuit::Circuit &reference,
                const std::vector<unsigned> &qubits,
                const std::vector<std::size_t> &boundaries)
{
    std::ostringstream os;
    os << "v1:" << std::hex << reference.contentHash() << std::dec
       << ":q";
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? "," : "") << qubits[i];
    os << ":b";
    if (boundaries.empty()) {
        os << "all";
    } else {
        std::vector<std::size_t> sorted = boundaries;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i)
            os << (i ? "," : "") << sorted[i];
    }
    return os.str();
}

std::string
serializePurities(std::size_t total,
                  const std::map<std::size_t, double> &purities)
{
    json::Value doc = json::Value::object();
    doc.set("v", json::Value::integer(1));
    doc.set("total", json::Value::integer(total));
    json::Value entries = json::Value::array();
    for (const auto &entry : purities) {
        json::Value e = json::Value::object();
        e.set("b", json::Value::integer(entry.first));
        e.set("p", json::Value::number(entry.second));
        entries.push(std::move(e));
    }
    doc.set("entries", std::move(entries));
    return doc.dump();
}

bool
restorePurities(const std::string &payload, std::size_t total,
                std::map<std::size_t, double> *out)
{
    json::Value doc;
    if (!json::Value::parse(payload, &doc))
        return false;
    try {
        if (doc.find("v") == nullptr ||
            doc.find("v")->asUint64() != 1 ||
            doc.find("total") == nullptr ||
            doc.find("total")->asUint64() != total)
            return false;
        const json::Value *entries = doc.find("entries");
        if (entries == nullptr || !entries->isArray())
            return false;
        std::map<std::size_t, double> restored;
        for (std::size_t i = 0; i < entries->size(); ++i) {
            const json::Value &e = entries->at(i);
            const json::Value *b = e.find("b");
            const json::Value *p = e.find("p");
            if (b == nullptr || p == nullptr)
                return false;
            restored.emplace(b->asUint64(), p->asDouble());
        }
        *out = std::move(restored);
        return true;
    } catch (const json::TypeError &) {
        return false;
    }
}

} // anonymous namespace

OverlapOracle::OverlapOracle(const circuit::Circuit &reference,
                             const std::vector<unsigned> &qubits,
                             const std::vector<std::size_t> &boundaries)
{
    fatal_if(!qubits.empty() && qubits.size() > 10,
             "comparator register too wide for reduced-density "
             "purities (", qubits.size(), " qubits)");

    totalBoundaries = reference.size() + 1;
    std::vector<std::size_t> sorted = boundaries;
    std::sort(sorted.begin(), sorted.end());
    const auto wanted = [&](std::size_t b) {
        return sorted.empty() ||
               std::binary_search(sorted.begin(), sorted.end(), b);
    };

    common::ArtifactStore *store = common::artifactStore();
    std::string key;
    if (store != nullptr) {
        key = overlapStoreKey(reference, qubits, boundaries);
        std::string payload;
        if (store->load("overlap", key, &payload) &&
            restorePurities(payload, totalBoundaries, &purities)) {
            bool covered = true;
            for (std::size_t b = 0;
                 covered && b < totalBoundaries; ++b)
                covered = !wanted(b) || purities.count(b) != 0;
            if (covered)
                return;
            purities.clear();
        }
    }

    {
        QSA_OBS_TIMER(derive, "locate.oracle.derive");

        std::vector<circuit::ExecutionBranch> branches;
        branches.push_back(circuit::ExecutionBranch{
            1.0, sim::StateVector(reference.numQubits()), {}});

        if (wanted(0))
            purities.emplace(0, mixturePurity(branches, qubits));
        for (std::size_t k = 0; k < reference.size(); ++k) {
            circuit::stepBranches(reference,
                                  reference.instructions()[k],
                                  branches, kMaxBranches);
            if (wanted(k + 1))
                purities.emplace(k + 1,
                                 mixturePurity(branches, qubits));
        }
    }

    if (store != nullptr)
        store->store("overlap", key,
                     serializePurities(totalBoundaries, purities));
}

double
OverlapOracle::purityAt(std::size_t boundary) const
{
    fatal_if(boundary >= totalBoundaries, "boundary ", boundary,
             " beyond the reference program (", totalBoundaries - 1,
             " instructions)");
    const auto it = purities.find(boundary);
    fatal_if(it == purities.end(), "boundary ", boundary,
             " was not recorded by this overlap oracle");
    return it->second;
}

std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ)
{
    std::vector<ScopePredicate> scoped;
    for (const auto &pair : circuit::scopeBreakpointPairs(circ)) {
        ScopePredicate computed;
        computed.kind = assertions::AssertionKind::Entangled;
        computed.boundary = circ.breakpointPosition(pair.computed);
        computed.label = pair.computed;
        scoped.push_back(std::move(computed));

        ScopePredicate uncomputed;
        uncomputed.kind = assertions::AssertionKind::Product;
        uncomputed.boundary = circ.breakpointPosition(pair.uncomputed);
        uncomputed.label = pair.uncomputed;
        scoped.push_back(std::move(uncomputed));
    }

    std::sort(scoped.begin(), scoped.end(),
              [](const ScopePredicate &a, const ScopePredicate &b) {
                  return a.boundary < b.boundary;
              });
    return scoped;
}

} // namespace qsa::locate
