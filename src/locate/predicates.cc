/**
 * @file
 * PredicateOracle implementation.
 */

#include "locate/predicates.hh"

#include <algorithm>
#include <cmath>

#include "circuit/executor.hh"
#include "circuit/scopes.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace qsa::locate
{

namespace
{

/** Tolerance for classifying exact marginals. */
constexpr double kProbTol = 1e-9;

BoundaryPredicate
classify(const std::vector<double> &probs)
{
    BoundaryPredicate pred;

    std::size_t argmax = 0;
    double maxp = 0.0;
    for (std::size_t v = 0; v < probs.size(); ++v) {
        if (probs[v] > maxp) {
            maxp = probs[v];
            argmax = v;
        }
    }
    if (maxp >= 1.0 - kProbTol) {
        pred.kind = assertions::AssertionKind::Classical;
        pred.expectedValue = argmax;
        return pred;
    }

    const double uniform = 1.0 / probs.size();
    const bool is_uniform =
        std::all_of(probs.begin(), probs.end(), [&](double p) {
            return std::abs(p - uniform) <= kProbTol;
        });
    if (is_uniform) {
        pred.kind = assertions::AssertionKind::Superposition;
        return pred;
    }

    pred.kind = assertions::AssertionKind::Distribution;
    pred.expectedProbs = probs;
    return pred;
}

} // anonymous namespace

PredicateOracle::PredicateOracle(const circuit::Circuit &reference,
                                 const circuit::QubitRegister &r,
                                 std::uint64_t seed)
    : reg(r)
{
    fatal_if(reg.width() == 0,
             "predicate oracle needs a non-empty register");
    fatal_if(reg.width() > 24,
             "register too wide for dense boundary predicates");

    // One incremental pass: simulate instruction k, then record the
    // register marginal as the boundary-(k+1) predicate.
    sim::StateVector state(reference.numQubits());
    std::map<std::string, std::uint64_t> measurements;
    Rng rng(seed);

    preds.reserve(reference.size() + 1);
    preds.push_back(classify(state.marginalProbs(reg.qubits())));
    for (std::size_t k = 0; k < reference.size(); ++k) {
        const auto step = reference.sliceRange(k, k + 1);
        circuit::runCircuitOn(step, state, measurements, rng);
        preds.push_back(classify(state.marginalProbs(reg.qubits())));
    }
}

const BoundaryPredicate &
PredicateOracle::at(std::size_t boundary) const
{
    fatal_if(boundary >= preds.size(), "boundary ", boundary,
             " beyond the reference program (", preds.size() - 1,
             " instructions)");
    return preds[boundary];
}

assertions::AssertionSpec
PredicateOracle::specAt(std::size_t boundary,
                        const std::string &breakpoint,
                        double alpha) const
{
    const BoundaryPredicate &pred = at(boundary);

    assertions::AssertionSpec spec;
    spec.kind = pred.kind;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.expectedValue = pred.expectedValue;
    spec.expectedProbs = pred.expectedProbs;
    spec.alpha = alpha;
    spec.name = "predicate@" + std::to_string(boundary);
    return spec;
}

std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ)
{
    std::vector<ScopePredicate> scoped;
    for (const auto &pair : circuit::scopeBreakpointPairs(circ)) {
        ScopePredicate computed;
        computed.kind = assertions::AssertionKind::Entangled;
        computed.boundary = circ.breakpointPosition(pair.computed);
        computed.label = pair.computed;
        scoped.push_back(std::move(computed));

        ScopePredicate uncomputed;
        uncomputed.kind = assertions::AssertionKind::Product;
        uncomputed.boundary = circ.breakpointPosition(pair.uncomputed);
        uncomputed.label = pair.uncomputed;
        scoped.push_back(std::move(uncomputed));
    }

    std::sort(scoped.begin(), scoped.end(),
              [](const ScopePredicate &a, const ScopePredicate &b) {
                  return a.boundary < b.boundary;
              });
    return scoped;
}

} // namespace qsa::locate
