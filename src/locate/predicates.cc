/**
 * @file
 * PredicateOracle / OverlapOracle implementation.
 */

#include "locate/predicates.hh"

#include <algorithm>
#include <cmath>

#include <sstream>

#include "circuit/executor.hh"
#include "circuit/scopes.hh"
#include "common/artifacts.hh"
#include "common/bits.hh"
#include "common/errors.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/obs.hh"
#include "sim/gates.hh"

namespace qsa::locate
{

namespace
{

/** Tolerance for classifying exact marginals. */
constexpr double kProbTol = 1e-9;

/**
 * Cap on the measurement-branch enumeration: 2^12 outcome histories
 * is far past any semiclassical program in the repo (one recycled
 * control qubit measured t times is 2^t branches) while still
 * bounding a pathological all-qubits-measured-repeatedly program.
 * Overflow is a designed qsa::DeriveError naming the measuring
 * instruction (circuit::stepBranches), never a silent truncation —
 * and in OracleMode::Auto it is the sampled-derivation trigger.
 */
constexpr std::size_t kMaxBranches = 4096;

/**
 * Salt separating the sampled oracle's per-boundary outcome-draw
 * streams from the trajectory streams. The draw at (boundary, frame,
 * trial) must not consume trajectory randomness: recording an extra
 * boundary would otherwise perturb every subsequent measurement of
 * the same trial, making the derivation depend on the probed
 * boundary set.
 */
constexpr std::uint64_t kSampleDrawSalt = 0x5a3d53edc0117ecULL;

BoundaryPredicate
classify(const std::vector<double> &probs)
{
    BoundaryPredicate pred;

    std::size_t argmax = 0;
    double maxp = 0.0;
    for (std::size_t v = 0; v < probs.size(); ++v) {
        if (probs[v] > maxp) {
            maxp = probs[v];
            argmax = v;
        }
    }
    if (maxp >= 1.0 - kProbTol) {
        pred.kind = assertions::AssertionKind::Classical;
        pred.expectedValue = argmax;
        return pred;
    }

    const double uniform = 1.0 / probs.size();
    const bool is_uniform =
        std::all_of(probs.begin(), probs.end(), [&](double p) {
            return std::abs(p - uniform) <= kProbTol;
        });
    if (is_uniform) {
        pred.kind = assertions::AssertionKind::Superposition;
        return pred;
    }

    pred.kind = assertions::AssertionKind::Distribution;
    pred.expectedProbs = probs;
    return pred;
}

/**
 * Weighted register marginal over a measurement-branch mixture, read
 * in `frame`: each branch state is rotated by the frame's
 * basis-change epilogue before marginalisation — exactly the
 * distribution a probe carrying frameEpilogue(reg, frame) samples.
 */
std::vector<double>
mixtureMarginal(const std::vector<circuit::ExecutionBranch> &branches,
                const std::vector<unsigned> &qubits, Frame frame)
{
    std::vector<double> probs(pow2(qubits.size()), 0.0);
    for (const auto &branch : branches) {
        std::vector<double> marginal;
        if (frame == Frame::Z) {
            marginal = branch.state.marginalProbs(qubits);
        } else {
            sim::StateVector rotated = branch.state;
            for (unsigned q : qubits) {
                if (frame == Frame::Y)
                    rotated.applyGate(sim::gates::sdg(), q);
                rotated.applyGate(sim::gates::h(), q);
            }
            marginal = rotated.marginalProbs(qubits);
        }
        for (std::size_t v = 0; v < probs.size(); ++v)
            probs[v] += branch.weight * marginal[v];
    }
    return probs;
}

/**
 * Mixture purity tr(rho^2), reduced to `qubits` (empty = the full
 * space, where the pairwise-fidelity form avoids materialising a
 * 2^n x 2^n density matrix).
 */
double
mixturePurity(const std::vector<circuit::ExecutionBranch> &branches,
              const std::vector<unsigned> &qubits)
{
    if (qubits.empty()) {
        double purity = 0.0;
        for (std::size_t i = 0; i < branches.size(); ++i) {
            purity += branches[i].weight * branches[i].weight;
            for (std::size_t j = i + 1; j < branches.size(); ++j) {
                purity += 2.0 * branches[i].weight *
                          branches[j].weight *
                          branches[i].state.fidelity(
                              branches[j].state);
            }
        }
        return purity;
    }

    // Weighted reduced density matrix, then tr(rho^2) = sum |rho_ij|^2
    // (rho is Hermitian).
    const std::uint64_t dim = pow2(qubits.size());
    sim::CMatrix rho(dim);
    for (const auto &branch : branches) {
        const sim::CMatrix branch_rho =
            branch.state.reducedDensityMatrix(qubits);
        for (std::uint64_t r = 0; r < dim; ++r) {
            for (std::uint64_t c = 0; c < dim; ++c) {
                rho.at(r, c) +=
                    branch.weight * branch_rho.at(r, c);
            }
        }
    }
    double purity = 0.0;
    for (std::uint64_t r = 0; r < dim; ++r) {
        for (std::uint64_t c = 0; c < dim; ++c)
            purity += std::norm(rho.at(r, c));
    }
    return purity;
}

/**
 * Canonical store key for a predicate-oracle derivation: payload
 * schema version, reference content hash, probed qubits, recorded
 * boundary set ("all" for the dense form), frames in probe order —
 * and, for sampled derivations, the trial budget and master seed
 * (two sampled derivations agree only when both match; an exact
 * derivation depends on neither). Everything the derivation depends
 * on is in the key, so a hit is usable as-is and a version bump
 * invalidates every old entry.
 */
std::string
predicateStoreKey(const circuit::Circuit &reference,
                  const std::vector<unsigned> &qubits,
                  const std::vector<std::size_t> *boundaries,
                  const std::vector<Frame> &frames,
                  std::size_t sample_trials, std::uint64_t seed)
{
    std::ostringstream os;
    os << "v1:" << std::hex << reference.contentHash() << std::dec
       << ":q";
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? "," : "") << qubits[i];
    os << ":b";
    if (boundaries == nullptr) {
        os << "all";
    } else {
        std::vector<std::size_t> sorted = *boundaries;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i)
            os << (i ? "," : "") << sorted[i];
    }
    os << ":f";
    for (Frame frame : frames)
        os << frameName(frame);
    if (sample_trials != 0) {
        os << ":sampled" << sample_trials << ":s" << std::hex << seed
           << std::dec;
    }
    return os.str();
}

const char *
predicateKindTag(assertions::AssertionKind kind)
{
    switch (kind) {
      case assertions::AssertionKind::Classical: return "classical";
      case assertions::AssertionKind::Superposition:
          return "superposition";
      default: return "distribution";
    }
}

} // anonymous namespace

std::string
frameName(Frame frame)
{
    switch (frame) {
      case Frame::Z: return "Z";
      case Frame::X: return "X";
      case Frame::Y: return "Y";
    }
    panic("unknown measurement frame");
}

std::string
oracleModeName(OracleMode mode)
{
    switch (mode) {
      case OracleMode::Exact: return "exact";
      case OracleMode::Sampled: return "sampled";
      case OracleMode::Auto: return "auto";
    }
    panic("unknown oracle mode");
}

void
appendFrameEpilogue(circuit::Circuit &circ,
                    const std::vector<unsigned> &qubits, Frame frame)
{
    if (frame == Frame::Z)
        return;
    for (unsigned q : qubits) {
        if (frame == Frame::Y)
            circ.sdg(q);
        circ.h(q);
    }
}

PredicateOracle::PredicateOracle(const circuit::Circuit &reference,
                                 const circuit::QubitRegister &r,
                                 std::uint64_t seed_in,
                                 const OracleOptions &options)
    : reg(r), seed(seed_in)
{
    build(reference, nullptr, {Frame::Z}, options);
}

PredicateOracle::PredicateOracle(
    const circuit::Circuit &reference,
    const circuit::QubitRegister &r, std::uint64_t seed_in,
    const std::vector<std::size_t> &boundaries,
    const OracleOptions &options)
    : reg(r), seed(seed_in)
{
    build(reference, &boundaries, {Frame::Z}, options);
}

PredicateOracle::PredicateOracle(
    const circuit::Circuit &reference,
    const circuit::QubitRegister &r, std::uint64_t seed_in,
    const std::vector<std::size_t> *boundaries,
    const std::vector<Frame> &frames,
    const OracleOptions &options)
    : reg(r), seed(seed_in)
{
    build(reference, boundaries, frames, options);
}

namespace
{

/** Serialize a predicate map for the oracle store (see build()). */
std::string
serializePredicates(
    std::size_t total,
    const std::map<std::pair<std::size_t, Frame>, BoundaryPredicate>
        &preds)
{
    json::Value doc = json::Value::object();
    doc.set("v", json::Value::integer(1));
    doc.set("total", json::Value::integer(total));
    json::Value entries = json::Value::array();
    for (const auto &entry : preds) {
        const BoundaryPredicate &pred = entry.second;
        json::Value e = json::Value::object();
        e.set("b", json::Value::integer(entry.first.first));
        e.set("f", json::Value::string(frameName(entry.first.second)));
        e.set("k",
              json::Value::string(predicateKindTag(pred.kind)));
        if (pred.kind == assertions::AssertionKind::Classical)
            e.set("value", json::Value::integer(pred.expectedValue));
        if (pred.kind == assertions::AssertionKind::Distribution) {
            json::Value probs = json::Value::array();
            for (double p : pred.expectedProbs)
                probs.push(json::Value::number(p));
            e.set("probs", std::move(probs));
        }
        if (pred.referenceTrials != 0) {
            json::Value counts = json::Value::array();
            for (double c : pred.referenceCounts)
                counts.push(json::Value::number(c));
            e.set("counts", std::move(counts));
            e.set("trials",
                  json::Value::integer(pred.referenceTrials));
        }
        entries.push(std::move(e));
    }
    doc.set("entries", std::move(entries));
    return doc.dump();
}

/**
 * Parse a stored predicate payload back into a map. Returns false on
 * any shape mismatch — the caller then just re-derives.
 */
bool
restorePredicates(
    const std::string &payload, std::size_t total,
    std::map<std::pair<std::size_t, Frame>, BoundaryPredicate> *out)
{
    json::Value doc;
    if (!json::Value::parse(payload, &doc))
        return false;
    try {
        if (doc.find("v") == nullptr ||
            doc.find("v")->asUint64() != 1 ||
            doc.find("total") == nullptr ||
            doc.find("total")->asUint64() != total)
            return false;
        const json::Value *entries = doc.find("entries");
        if (entries == nullptr || !entries->isArray())
            return false;
        std::map<std::pair<std::size_t, Frame>, BoundaryPredicate>
            restored;
        for (std::size_t i = 0; i < entries->size(); ++i) {
            const json::Value &e = entries->at(i);
            const json::Value *b = e.find("b");
            const json::Value *f = e.find("f");
            const json::Value *k = e.find("k");
            if (b == nullptr || f == nullptr || k == nullptr)
                return false;
            Frame frame = Frame::Z;
            if (f->asString() == "X")
                frame = Frame::X;
            else if (f->asString() == "Y")
                frame = Frame::Y;
            else if (f->asString() != "Z")
                return false;
            BoundaryPredicate pred;
            if (k->asString() == "classical") {
                pred.kind = assertions::AssertionKind::Classical;
                const json::Value *value = e.find("value");
                if (value == nullptr)
                    return false;
                pred.expectedValue = value->asUint64();
            } else if (k->asString() == "superposition") {
                pred.kind = assertions::AssertionKind::Superposition;
            } else if (k->asString() == "distribution") {
                pred.kind = assertions::AssertionKind::Distribution;
                const json::Value *probs = e.find("probs");
                if (probs == nullptr || !probs->isArray())
                    return false;
                for (std::size_t p = 0; p < probs->size(); ++p)
                    pred.expectedProbs.push_back(
                        probs->at(p).asDouble());
            } else {
                return false;
            }
            const json::Value *counts = e.find("counts");
            const json::Value *trials = e.find("trials");
            if ((counts == nullptr) != (trials == nullptr))
                return false;
            if (counts != nullptr) {
                if (!counts->isArray())
                    return false;
                for (std::size_t c = 0; c < counts->size(); ++c)
                    pred.referenceCounts.push_back(
                        counts->at(c).asDouble());
                pred.referenceTrials = trials->asUint64();
                if (pred.referenceTrials == 0)
                    return false;
            }
            restored.emplace(std::make_pair(b->asUint64(), frame),
                             std::move(pred));
        }
        *out = std::move(restored);
        return true;
    } catch (const json::TypeError &) {
        return false;
    }
}

} // anonymous namespace

void
PredicateOracle::build(const circuit::Circuit &reference,
                       const std::vector<std::size_t> *boundaries,
                       const std::vector<Frame> &frames,
                       const OracleOptions &options)
{
    fatal_if(reg.width() == 0,
             "predicate oracle needs a non-empty register");
    fatal_if(frames.empty(),
             "predicate oracle needs at least one measurement frame");
    if (reg.width() > 24) {
        // Dense 2^width marginals are hopeless in *any* mode (the
        // sampled oracle still tallies per-value counts); the caller
        // can recover by asserting on a narrower register, so this
        // is a DeriveError, not a fatal.
        throw DeriveError(
            "register of " + std::to_string(reg.width()) + " qubits",
            "register too wide for dense boundary predicates (" +
                std::to_string(reg.width()) +
                " qubits > 24): assert on a narrower register");
    }

    totalBoundaries = reference.size() + 1;
    std::vector<std::size_t> sorted;
    if (boundaries != nullptr) {
        sorted = *boundaries;
        std::sort(sorted.begin(), sorted.end());
    }
    const bool all = boundaries == nullptr;

    if (options.mode == OracleMode::Sampled) {
        buildSampled(reference, sorted, all, frames,
                     options.sampleTrials);
        return;
    }
    try {
        buildExact(reference, sorted, all, frames);
    } catch (const DeriveError &) {
        if (options.mode == OracleMode::Exact)
            throw;
        // Auto: past the branch cap the exact mixture is
        // unenumerable — re-derive by Monte-Carlo instead.
        QSA_OBS_COUNTER("locate.oracle.sampled_fallbacks", 1);
        preds.clear();
        buildSampled(reference, sorted, all, frames,
                     options.sampleTrials);
    }
}

void
PredicateOracle::buildExact(
    const circuit::Circuit &reference,
    const std::vector<std::size_t> &sortedBoundaries,
    bool allBoundaries, const std::vector<Frame> &frames)
{
    const auto wanted = [&](std::size_t b) {
        return allBoundaries ||
               std::binary_search(sortedBoundaries.begin(),
                                  sortedBoundaries.end(), b);
    };

    // A persistent store (when installed) short-circuits the whole
    // derivation: a restored map must cover exactly the wanted
    // (boundary, frame) grid, otherwise it is treated as a miss.
    common::ArtifactStore *store = common::artifactStore();
    std::string key;
    if (store != nullptr) {
        key = predicateStoreKey(
            reference, reg.qubits(),
            allBoundaries ? nullptr : &sortedBoundaries, frames, 0, 0);
        std::string payload;
        if (store->load("predicates", key, &payload) &&
            restorePredicates(payload, totalBoundaries, &preds)) {
            bool covered = true;
            for (std::size_t b = 0;
                 covered && b < totalBoundaries; ++b) {
                if (!wanted(b))
                    continue;
                for (Frame frame : frames)
                    covered = covered &&
                              preds.count({b, frame}) != 0;
            }
            if (covered)
                return;
            preds.clear();
        }
    }

    {
        // Timed so a warm store shows up as a ~0 derive total.
        QSA_OBS_TIMER(derive, "locate.oracle.derive");

        const auto record =
            [&](std::size_t b,
                const std::vector<circuit::ExecutionBranch>
                    &branches) {
                for (Frame frame : frames) {
                    preds.emplace(std::make_pair(b, frame),
                                  classify(mixtureMarginal(
                                      branches, reg.qubits(),
                                      frame)));
                }
            };

        // One incremental measurement-resolved pass: advance the
        // branch mixture through instruction k, then record the
        // weighted register marginal(s) as the boundary-(k+1)
        // predicate.
        std::vector<circuit::ExecutionBranch> branches;
        branches.push_back(circuit::ExecutionBranch{
            1.0, sim::StateVector(reference.numQubits()), {}});

        if (wanted(0))
            record(0, branches);
        for (std::size_t k = 0; k < reference.size(); ++k) {
            circuit::stepBranches(reference,
                                  reference.instructions()[k],
                                  branches, kMaxBranches);
            if (wanted(k + 1))
                record(k + 1, branches);
        }
    }

    if (store != nullptr)
        store->store("predicates", key,
                     serializePredicates(totalBoundaries, preds));
}

void
PredicateOracle::buildSampled(
    const circuit::Circuit &reference,
    const std::vector<std::size_t> &sortedBoundaries,
    bool allBoundaries, const std::vector<Frame> &frames,
    std::size_t trials)
{
    fatal_if(trials == 0,
             "sampled oracle needs a non-zero trial budget");
    sampledTrials = trials;

    const auto wanted = [&](std::size_t b) {
        return allBoundaries ||
               std::binary_search(sortedBoundaries.begin(),
                                  sortedBoundaries.end(), b);
    };

    common::ArtifactStore *store = common::artifactStore();
    std::string key;
    if (store != nullptr) {
        key = predicateStoreKey(
            reference, reg.qubits(),
            allBoundaries ? nullptr : &sortedBoundaries, frames,
            trials, seed);
        std::string payload;
        if (store->load("predicates", key, &payload) &&
            restorePredicates(payload, totalBoundaries, &preds)) {
            bool covered = true;
            for (std::size_t b = 0;
                 covered && b < totalBoundaries; ++b) {
                if (!wanted(b))
                    continue;
                for (Frame frame : frames)
                    covered = covered &&
                              preds.count({b, frame}) != 0;
            }
            if (covered)
                return;
            preds.clear();
        }
    }

    {
        QSA_OBS_TIMER(derive, "locate.oracle.derive");
        QSA_OBS_COUNTER("locate.oracle.sampled_derivations", 1);
        QSA_OBS_COUNTER("locate.oracle.sampled_trials", trials);

        // Per-(boundary, frame) outcome tallies over all trials.
        std::map<std::pair<std::size_t, Frame>, std::vector<double>>
            counts;

        // Draw one outcome of trial t's state at boundary b in each
        // frame. The draw stream is keyed by (boundary, frame,
        // trial) and independent of the trajectory stream: recording
        // an extra boundary must not perturb the trajectory's later
        // measurements, or the derivation would depend on the probed
        // boundary set.
        const auto drawAt = [&](std::size_t b, std::size_t trial,
                                const sim::StateVector &state) {
            for (Frame frame : frames) {
                std::vector<double> marginal;
                if (frame == Frame::Z) {
                    marginal = state.marginalProbs(reg.qubits());
                } else {
                    sim::StateVector rotated = state;
                    for (unsigned q : reg.qubits()) {
                        if (frame == Frame::Y)
                            rotated.applyGate(sim::gates::sdg(), q);
                        rotated.applyGate(sim::gates::h(), q);
                    }
                    marginal = rotated.marginalProbs(reg.qubits());
                }
                Rng draw =
                    Rng(seed ^ kSampleDrawSalt)
                        .split(b * 3 +
                               static_cast<std::size_t>(frame))
                        .split(trial);
                std::vector<double> &tally = counts[{b, frame}];
                if (tally.empty())
                    tally.assign(pow2(reg.width()), 0.0);
                tally[draw.discrete(marginal)] += 1.0;
            }
        };

        // One sampled trajectory per trial, stepped with the same
        // interpreter as a Resimulate run (bit-identical
        // amplitudes), its RNG stream keyed by the trial index — the
        // tallies are independent of thread count and iteration
        // order by construction.
        for (std::size_t t = 0; t < trials; ++t) {
            Rng traj = Rng(seed).split(t);
            sim::StateVector state(reference.numQubits());
            std::map<std::string, std::uint64_t> meas;
            if (wanted(0))
                drawAt(0, t, state);
            for (std::size_t k = 0; k < reference.size(); ++k) {
                circuit::stepInstruction(reference,
                                         reference.instructions()[k],
                                         state, meas, traj);
                if (wanted(k + 1))
                    drawAt(k + 1, t, state);
            }
        }

        // Sampled predicates are always Distribution-with-counts:
        // classifying a finite sample as Classical/Superposition
        // would promote sampling noise into an exact hypothesis and
        // hard-fail probes on rare-but-possible outcomes. The
        // two-sample test downstream prices in both sides' noise.
        for (auto &entry : counts) {
            BoundaryPredicate pred;
            pred.kind = assertions::AssertionKind::Distribution;
            pred.referenceCounts = std::move(entry.second);
            pred.referenceTrials = trials;
            pred.expectedProbs.reserve(pred.referenceCounts.size());
            for (double c : pred.referenceCounts)
                pred.expectedProbs.push_back(
                    c / static_cast<double>(trials));
            preds.emplace(entry.first, std::move(pred));
        }
    }

    if (store != nullptr)
        store->store("predicates", key,
                     serializePredicates(totalBoundaries, preds));
}

const BoundaryPredicate &
PredicateOracle::at(std::size_t boundary, Frame frame) const
{
    fatal_if(boundary >= totalBoundaries, "boundary ", boundary,
             " beyond the reference program (", totalBoundaries - 1,
             " instructions)");
    const auto it = preds.find({boundary, frame});
    fatal_if(it == preds.end(), "boundary ", boundary, " (frame ",
             frameName(frame), ") was not recorded by this oracle");
    return it->second;
}

assertions::AssertionSpec
PredicateOracle::specAt(std::size_t boundary,
                        const std::string &breakpoint, double alpha,
                        Frame frame) const
{
    const BoundaryPredicate &pred = at(boundary, frame);

    assertions::AssertionSpec spec;
    spec.kind = pred.kind;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.expectedValue = pred.expectedValue;
    spec.expectedProbs = pred.expectedProbs;
    spec.referenceCounts = pred.referenceCounts;
    spec.alpha = alpha;
    spec.name = "predicate@" + std::to_string(boundary);
    if (frame != Frame::Z)
        spec.name += "[" + frameName(frame) + "]";
    return spec;
}

namespace
{

/** Canonical overlap-oracle store key (see predicateStoreKey). */
std::string
overlapStoreKey(const circuit::Circuit &reference,
                const std::vector<unsigned> &qubits,
                const std::vector<std::size_t> &boundaries)
{
    std::ostringstream os;
    os << "v1:" << std::hex << reference.contentHash() << std::dec
       << ":q";
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? "," : "") << qubits[i];
    os << ":b";
    if (boundaries.empty()) {
        os << "all";
    } else {
        std::vector<std::size_t> sorted = boundaries;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i)
            os << (i ? "," : "") << sorted[i];
    }
    return os.str();
}

std::string
serializePurities(std::size_t total,
                  const std::map<std::size_t, double> &purities)
{
    json::Value doc = json::Value::object();
    doc.set("v", json::Value::integer(1));
    doc.set("total", json::Value::integer(total));
    json::Value entries = json::Value::array();
    for (const auto &entry : purities) {
        json::Value e = json::Value::object();
        e.set("b", json::Value::integer(entry.first));
        e.set("p", json::Value::number(entry.second));
        entries.push(std::move(e));
    }
    doc.set("entries", std::move(entries));
    return doc.dump();
}

bool
restorePurities(const std::string &payload, std::size_t total,
                std::map<std::size_t, double> *out)
{
    json::Value doc;
    if (!json::Value::parse(payload, &doc))
        return false;
    try {
        if (doc.find("v") == nullptr ||
            doc.find("v")->asUint64() != 1 ||
            doc.find("total") == nullptr ||
            doc.find("total")->asUint64() != total)
            return false;
        const json::Value *entries = doc.find("entries");
        if (entries == nullptr || !entries->isArray())
            return false;
        std::map<std::size_t, double> restored;
        for (std::size_t i = 0; i < entries->size(); ++i) {
            const json::Value &e = entries->at(i);
            const json::Value *b = e.find("b");
            const json::Value *p = e.find("p");
            if (b == nullptr || p == nullptr)
                return false;
            restored.emplace(b->asUint64(), p->asDouble());
        }
        *out = std::move(restored);
        return true;
    } catch (const json::TypeError &) {
        return false;
    }
}

} // anonymous namespace

OverlapOracle::OverlapOracle(const circuit::Circuit &reference,
                             const std::vector<unsigned> &qubits,
                             const std::vector<std::size_t> &boundaries)
{
    if (!qubits.empty() && qubits.size() > 10) {
        // Recoverable by scoping the comparator to fewer qubits —
        // thrown so a serve daemon fails the request, not itself.
        throw DeriveError(
            "comparator register of " +
                std::to_string(qubits.size()) + " qubits",
            "comparator register too wide for reduced-density "
            "purities (" + std::to_string(qubits.size()) +
                " qubits > 10): scope the swap-test comparator to a "
                "narrower register");
    }

    totalBoundaries = reference.size() + 1;
    std::vector<std::size_t> sorted = boundaries;
    std::sort(sorted.begin(), sorted.end());
    const auto wanted = [&](std::size_t b) {
        return sorted.empty() ||
               std::binary_search(sorted.begin(), sorted.end(), b);
    };

    common::ArtifactStore *store = common::artifactStore();
    std::string key;
    if (store != nullptr) {
        key = overlapStoreKey(reference, qubits, boundaries);
        std::string payload;
        if (store->load("overlap", key, &payload) &&
            restorePurities(payload, totalBoundaries, &purities)) {
            bool covered = true;
            for (std::size_t b = 0;
                 covered && b < totalBoundaries; ++b)
                covered = !wanted(b) || purities.count(b) != 0;
            if (covered)
                return;
            purities.clear();
        }
    }

    {
        QSA_OBS_TIMER(derive, "locate.oracle.derive");

        std::vector<circuit::ExecutionBranch> branches;
        branches.push_back(circuit::ExecutionBranch{
            1.0, sim::StateVector(reference.numQubits()), {}});

        if (wanted(0))
            purities.emplace(0, mixturePurity(branches, qubits));
        for (std::size_t k = 0; k < reference.size(); ++k) {
            circuit::stepBranches(reference,
                                  reference.instructions()[k],
                                  branches, kMaxBranches);
            if (wanted(k + 1))
                purities.emplace(k + 1,
                                 mixturePurity(branches, qubits));
        }
    }

    if (store != nullptr)
        store->store("overlap", key,
                     serializePurities(totalBoundaries, purities));
}

double
OverlapOracle::purityAt(std::size_t boundary) const
{
    fatal_if(boundary >= totalBoundaries, "boundary ", boundary,
             " beyond the reference program (", totalBoundaries - 1,
             " instructions)");
    const auto it = purities.find(boundary);
    fatal_if(it == purities.end(), "boundary ", boundary,
             " was not recorded by this overlap oracle");
    return it->second;
}

std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ)
{
    std::vector<ScopePredicate> scoped;
    for (const auto &pair : circuit::scopeBreakpointPairs(circ)) {
        ScopePredicate computed;
        computed.kind = assertions::AssertionKind::Entangled;
        computed.boundary = circ.breakpointPosition(pair.computed);
        computed.label = pair.computed;
        scoped.push_back(std::move(computed));

        ScopePredicate uncomputed;
        uncomputed.kind = assertions::AssertionKind::Product;
        uncomputed.boundary = circ.breakpointPosition(pair.uncomputed);
        uncomputed.label = pair.uncomputed;
        scoped.push_back(std::move(uncomputed));
    }

    std::sort(scoped.begin(), scoped.end(),
              [](const ScopePredicate &a, const ScopePredicate &b) {
                  return a.boundary < b.boundary;
              });
    return scoped;
}

} // namespace qsa::locate
