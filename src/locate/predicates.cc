/**
 * @file
 * PredicateOracle implementation.
 */

#include "locate/predicates.hh"

#include <algorithm>
#include <cmath>

#include "circuit/executor.hh"
#include "circuit/scopes.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::locate
{

namespace
{

/** Tolerance for classifying exact marginals. */
constexpr double kProbTol = 1e-9;

/**
 * Cap on the measurement-branch enumeration: 2^12 outcome histories
 * is far past any semiclassical program in the repo (one recycled
 * control qubit measured t times is 2^t branches) while still
 * bounding a pathological all-qubits-measured-repeatedly program.
 */
constexpr std::size_t kMaxBranches = 4096;

BoundaryPredicate
classify(const std::vector<double> &probs)
{
    BoundaryPredicate pred;

    std::size_t argmax = 0;
    double maxp = 0.0;
    for (std::size_t v = 0; v < probs.size(); ++v) {
        if (probs[v] > maxp) {
            maxp = probs[v];
            argmax = v;
        }
    }
    if (maxp >= 1.0 - kProbTol) {
        pred.kind = assertions::AssertionKind::Classical;
        pred.expectedValue = argmax;
        return pred;
    }

    const double uniform = 1.0 / probs.size();
    const bool is_uniform =
        std::all_of(probs.begin(), probs.end(), [&](double p) {
            return std::abs(p - uniform) <= kProbTol;
        });
    if (is_uniform) {
        pred.kind = assertions::AssertionKind::Superposition;
        return pred;
    }

    pred.kind = assertions::AssertionKind::Distribution;
    pred.expectedProbs = probs;
    return pred;
}

/** Weighted register marginal over a measurement-branch mixture. */
std::vector<double>
mixtureMarginal(const std::vector<circuit::ExecutionBranch> &branches,
                const std::vector<unsigned> &qubits)
{
    std::vector<double> probs(pow2(qubits.size()), 0.0);
    for (const auto &branch : branches) {
        const auto marginal = branch.state.marginalProbs(qubits);
        for (std::size_t v = 0; v < probs.size(); ++v)
            probs[v] += branch.weight * marginal[v];
    }
    return probs;
}

} // anonymous namespace

PredicateOracle::PredicateOracle(const circuit::Circuit &reference,
                                 const circuit::QubitRegister &r,
                                 std::uint64_t seed)
    : reg(r)
{
    (void)seed;
    build(reference, nullptr);
}

PredicateOracle::PredicateOracle(
    const circuit::Circuit &reference,
    const circuit::QubitRegister &r, std::uint64_t seed,
    const std::vector<std::size_t> &boundaries)
    : reg(r)
{
    (void)seed;
    build(reference, &boundaries);
}

void
PredicateOracle::build(const circuit::Circuit &reference,
                       const std::vector<std::size_t> *boundaries)
{
    fatal_if(reg.width() == 0,
             "predicate oracle needs a non-empty register");
    fatal_if(reg.width() > 24,
             "register too wide for dense boundary predicates");

    totalBoundaries = reference.size() + 1;
    std::vector<std::size_t> sorted;
    if (boundaries != nullptr) {
        sorted = *boundaries;
        std::sort(sorted.begin(), sorted.end());
    }
    const auto wanted = [&](std::size_t b) {
        return boundaries == nullptr ||
               std::binary_search(sorted.begin(), sorted.end(), b);
    };

    // One incremental measurement-resolved pass: advance the branch
    // mixture through instruction k, then record the weighted
    // register marginal as the boundary-(k+1) predicate.
    std::vector<circuit::ExecutionBranch> branches;
    branches.push_back(circuit::ExecutionBranch{
        1.0, sim::StateVector(reference.numQubits()), {}});

    if (wanted(0))
        preds.emplace(0, classify(mixtureMarginal(branches,
                                                  reg.qubits())));
    for (std::size_t k = 0; k < reference.size(); ++k) {
        circuit::stepBranches(reference, reference.instructions()[k],
                              branches, kMaxBranches);
        if (wanted(k + 1)) {
            preds.emplace(k + 1,
                          classify(mixtureMarginal(branches,
                                                   reg.qubits())));
        }
    }
}

const BoundaryPredicate &
PredicateOracle::at(std::size_t boundary) const
{
    fatal_if(boundary >= totalBoundaries, "boundary ", boundary,
             " beyond the reference program (", totalBoundaries - 1,
             " instructions)");
    const auto it = preds.find(boundary);
    fatal_if(it == preds.end(), "boundary ", boundary,
             " was not recorded by this oracle");
    return it->second;
}

assertions::AssertionSpec
PredicateOracle::specAt(std::size_t boundary,
                        const std::string &breakpoint,
                        double alpha) const
{
    const BoundaryPredicate &pred = at(boundary);

    assertions::AssertionSpec spec;
    spec.kind = pred.kind;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.expectedValue = pred.expectedValue;
    spec.expectedProbs = pred.expectedProbs;
    spec.alpha = alpha;
    spec.name = "predicate@" + std::to_string(boundary);
    return spec;
}

std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ)
{
    std::vector<ScopePredicate> scoped;
    for (const auto &pair : circuit::scopeBreakpointPairs(circ)) {
        ScopePredicate computed;
        computed.kind = assertions::AssertionKind::Entangled;
        computed.boundary = circ.breakpointPosition(pair.computed);
        computed.label = pair.computed;
        scoped.push_back(std::move(computed));

        ScopePredicate uncomputed;
        uncomputed.kind = assertions::AssertionKind::Product;
        uncomputed.boundary = circ.breakpointPosition(pair.uncomputed);
        uncomputed.label = pair.uncomputed;
        scoped.push_back(std::move(uncomputed));
    }

    std::sort(scoped.begin(), scoped.end(),
              [](const ScopePredicate &a, const ScopePredicate &b) {
                  return a.boundary < b.boundary;
              });
    return scoped;
}

} // namespace qsa::locate
