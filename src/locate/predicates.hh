/**
 * @file
 * Expected-state predicates for bug localization.
 *
 * A BugLocator probe asks "does the program under test still look
 * like the reference program at boundary k?". The PredicateOracle
 * answers the *reference* half of that question: one exact
 * measurement-resolved pass over the reference program captures, at
 * every instruction boundary, what a statistical assertion on the
 * probed register should expect — a classical point-mass value where
 * the tracked state is classical, a uniform superposition where it is
 * uniform, and an explicit outcome distribution otherwise.
 *
 * Mid-circuit measurement is handled exactly: the pass tracks the
 * full outcome *mixture* (circuit::stepBranches), conditioning each
 * branch's classically-controlled instructions on that branch's own
 * recorded outcomes, and the boundary predicate describes the
 * probability-weighted marginal over all branches. That is precisely
 * the distribution a Resimulate-mode ensemble samples when it
 * re-simulates the truncated program once per trial, so the oracle's
 * predicates stay exact past any number of measurements (at a branch
 * count exponential in the nondeterministic ones — capped, throwing
 * qsa::DeriveError beyond). Past the cap the oracle has a sampled
 * mode (OracleMode::Sampled, the Auto default's fallback): it
 * Monte-Carlo samples reference trajectories under the splittable
 * per-trial RNG discipline and estimates each boundary marginal from
 * the empirical counts, which downstream checks compare against the
 * suspect ensemble by *two-sample* tests — the segment-comparison
 * scheme of Sato & Katsube (see DESIGN.md "Sampled oracle"). For
 * measurement-free programs the exact pass has a single branch and is
 * bit-identical to the previous semi-classical simulation.
 *
 * Scope structure is inherited separately: ComputeScope boundaries
 * ("<label>_computed" / "<label>_uncomputed", see circuit/scopes.hh)
 * name positions where the paper prescribes entangled / product
 * assertions, and scopeDerivedPredicates maps those labels onto
 * instruction boundaries so the locator can probe the inherited kind
 * instead of a plain marginal.
 */

#ifndef QSA_LOCATE_PREDICATES_HH
#define QSA_LOCATE_PREDICATES_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "assertions/spec.hh"
#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::locate
{

/**
 * Measurement frame a marginal predicate is stated in. The paper's
 * assertions sample in the computational (Z) basis only; Proq-style
 * projective checking shows non-computational-basis properties are
 * testable at runtime by rotating the frame onto the computational
 * basis first. A basis-change epilogue (frameEpilogue) appended to
 * the truncated probe transports the oracle's predicate into the X
 * or Y frame, where relative-phase divergence on the probed register
 * becomes an amplitude difference the chi-square machinery can see.
 */
enum class Frame
{
    Z, ///< computational basis (no epilogue)
    X, ///< Hadamard frame (epilogue: H per register qubit)
    Y, ///< Y frame (epilogue: Sdg then H per register qubit)
};

/** All frames, in probe order. */
inline constexpr Frame kAllFrames[] = {Frame::Z, Frame::X, Frame::Y};

/** Human-readable frame name ("Z" / "X" / "Y"). */
std::string frameName(Frame frame);

/**
 * Append the basis-change epilogue rotating `frame` onto the
 * computational basis for every listed qubit (no-op for Frame::Z).
 * Composes with any truncated program: measuring the qubits after
 * the epilogue samples their `frame`-basis outcome distribution.
 */
void appendFrameEpilogue(circuit::Circuit &circ,
                         const std::vector<unsigned> &qubits,
                         Frame frame);

/** What the reference program promises at one instruction boundary. */
struct BoundaryPredicate
{
    /** Assertion kind the boundary supports (Classical /
     *  Superposition / Distribution). */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Classical;

    /** Expected register value for Classical predicates. */
    std::uint64_t expectedValue = 0;

    /** Exact outcome distribution for Distribution predicates. */
    std::vector<double> expectedProbs;

    /**
     * Monte-Carlo reference counts when the predicate was derived by
     * the sampled oracle (length 2^width, summing to
     * referenceTrials). Downstream checks then run the two-sample
     * chi-square against these counts — comparing two finite samples
     * — instead of a one-sample test against expectedProbs, which
     * would treat sampling noise in the reference as ground truth.
     */
    std::vector<double> referenceCounts;

    /** Sampled-derivation trial budget; 0 means exact. */
    std::size_t referenceTrials = 0;
};

/** How a PredicateOracle derives its reference predicates. */
enum class OracleMode
{
    /**
     * Enumerate the full measurement-outcome mixture
     * (circuit::stepBranches). Exact, but exponential in the
     * nondeterministic measurements; throws qsa::DeriveError past
     * the branch cap.
     */
    Exact,

    /**
     * Monte-Carlo: sample reference trajectories with the splittable
     * per-trial-index RNG discipline (bit-identical across thread
     * counts) and estimate each boundary marginal from one outcome
     * draw per trial. Predicates become Distribution-with-counts and
     * probes compare suspect vs reference by two-sample tests. Cost
     * is linear in the trial budget regardless of how many qubits
     * the program measures.
     */
    Sampled,

    /** Exact, falling back to Sampled when exact derivation throws
     *  DeriveError (branch-cap overflow). */
    Auto,
};

/** Human-readable oracle-mode name ("exact" / "sampled" / "auto"). */
std::string oracleModeName(OracleMode mode);

/** Derivation knobs threaded from LocateConfig / serve requests. */
struct OracleOptions
{
    /** Derivation strategy. */
    OracleMode mode = OracleMode::Auto;

    /**
     * Trajectories per sampled derivation. The default matches the
     * exact oracle's branch cap: the sampled reference is never
     * cheaper to distinguish against than the widest exact mixture
     * it replaces.
     */
    std::size_t sampleTrials = 4096;
};

/**
 * See file comment. Construction runs the reference program once,
 * instruction by instruction, recording a predicate per boundary
 * (boundary k is the state after the first k instructions); cost is
 * one measurement-resolved simulation plus one marginalisation per
 * recorded boundary and branch.
 */
class PredicateOracle
{
  public:
    /**
     * @param reference the correct program
     * @param reg register the predicates describe
     * @param seed master seed for sampled derivation (every trial
     *        draws from the stream keyed by its trial index; exact
     *        derivation draws no randomness and ignores it)
     * @param options derivation mode + sample budget
     *
     * Throws qsa::DeriveError when derivation is impossible for the
     * given program/register: exact-mode branch-cap overflow (Auto
     * falls back to sampled instead), or a register too wide for
     * dense marginals in any mode.
     */
    PredicateOracle(const circuit::Circuit &reference,
                    const circuit::QubitRegister &reg,
                    std::uint64_t seed = 0x51c0ffee,
                    const OracleOptions &options = {});

    /**
     * As above, but record predicates only at the given boundaries —
     * the memory-lean form for callers that probe a sparse boundary
     * set with a wide register (mirror probes keep one full-space
     * predicate per mirror segment start, not per instruction).
     */
    PredicateOracle(const circuit::Circuit &reference,
                    const circuit::QubitRegister &reg,
                    std::uint64_t seed,
                    const std::vector<std::size_t> &boundaries,
                    const OracleOptions &options = {});

    /**
     * As above, additionally recording the register's mixture
     * marginal in each requested measurement frame (the rotated-basis
     * probe family asserts all of them per boundary). Frame::Z alone
     * is bit-identical to the two-frame-free constructors.
     */
    PredicateOracle(const circuit::Circuit &reference,
                    const circuit::QubitRegister &reg,
                    std::uint64_t seed,
                    const std::vector<std::size_t> *boundaries,
                    const std::vector<Frame> &frames,
                    const OracleOptions &options = {});

    /** Number of boundaries (reference instruction count + 1). */
    std::size_t numBoundaries() const { return totalBoundaries; }

    /** True when the predicates were derived by Monte-Carlo sampling
     *  (either forced or by Auto fallback past the branch cap). */
    bool sampled() const { return sampledTrials != 0; }

    /** Trial budget of the sampled derivation (0 when exact). */
    std::size_t trials() const { return sampledTrials; }

    /** Predicate at a (recorded) boundary, in a (recorded) frame. */
    const BoundaryPredicate &at(std::size_t boundary,
                                Frame frame = Frame::Z) const;

    /**
     * Build the assertion spec testing this oracle's predicate at a
     * boundary, bound to the given breakpoint label. The probe
     * program must carry the matching frameEpilogue before the
     * breakpoint when `frame` is not Z.
     */
    assertions::AssertionSpec specAt(std::size_t boundary,
                                     const std::string &breakpoint,
                                     double alpha,
                                     Frame frame = Frame::Z) const;

    /**
     * Every recorded predicate, keyed by (boundary, frame) — the
     * (de)serialization surface the persistent oracle store uses to
     * prove a warm restore equals a cold derivation.
     */
    const std::map<std::pair<std::size_t, Frame>, BoundaryPredicate> &
    entries() const
    {
        return preds;
    }

  private:
    circuit::QubitRegister reg;
    std::uint64_t seed = 0;
    std::size_t totalBoundaries = 0;
    std::size_t sampledTrials = 0;
    std::map<std::pair<std::size_t, Frame>, BoundaryPredicate> preds;

    void build(const circuit::Circuit &reference,
               const std::vector<std::size_t> *boundaries,
               const std::vector<Frame> &frames,
               const OracleOptions &options);

    void buildExact(const circuit::Circuit &reference,
                    const std::vector<std::size_t> &sortedBoundaries,
                    bool allBoundaries,
                    const std::vector<Frame> &frames);

    void buildSampled(const circuit::Circuit &reference,
                      const std::vector<std::size_t> &sortedBoundaries,
                      bool allBoundaries,
                      const std::vector<Frame> &frames,
                      std::size_t trials);
};

/**
 * Expected swap-test statistics per boundary: one exact
 * measurement-resolved pass over the reference records the *purity*
 * tr(rho_k^2) of the reference's mixture rho_k, reduced to the
 * comparator register, at each requested boundary. A swap-test
 * probe's ancilla reads 0 with probability (1 + tr(rho sigma)) / 2,
 * where sigma is the suspect's reduced mixture at the same boundary
 * (the partial swap test measures subsystem overlap); under the null
 * hypothesis sigma = rho, so the expected ancilla Bernoulli is
 * (1 + purity) / 2 — a classical point mass at 0 wherever the
 * reference's reduced state is pure. Unlike a register marginal, the
 * overlap deficit 1 - tr(rho sigma) is *invariant* under common
 * unitary evolution of the register, which is what makes the
 * swap-test witness monotone within a measure-free segment (see
 * locate.hh's family taxonomy). Register scoping is also what keeps
 * the probe *sensitive* past measurements: comparing the full space
 * scales the per-branch overlap signal by the squared branch weights
 * (measured qubits make the branches nearly orthogonal), while the
 * register that discards them keeps a high-purity — often pure —
 * null.
 */
class OverlapOracle
{
  public:
    /**
     * @param reference the correct program
     * @param qubits comparator register (empty = the full space)
     * @param boundaries boundaries to record (empty = all)
     */
    OverlapOracle(const circuit::Circuit &reference,
                  const std::vector<unsigned> &qubits,
                  const std::vector<std::size_t> &boundaries);

    /** Number of boundaries (reference instruction count + 1). */
    std::size_t numBoundaries() const { return totalBoundaries; }

    /** True when the boundary was recorded by this oracle. */
    bool recorded(std::size_t boundary) const
    {
        return purities.count(boundary) != 0;
    }

    /** Reduced mixture purity tr(rho^2) at a recorded boundary. */
    double purityAt(std::size_t boundary) const;

    /** Expected P(ancilla = 0) of a swap-test probe at a boundary. */
    double swapPassProbability(std::size_t boundary) const
    {
        return 0.5 * (1.0 + purityAt(boundary));
    }

    /** Every recorded purity by boundary (the (de)serialization
     *  surface for the persistent oracle store). */
    const std::map<std::size_t, double> &recordedPurities() const
    {
        return purities;
    }

  private:
    std::size_t totalBoundaries = 0;
    std::map<std::size_t, double> purities;
};

/** A scope-inherited assertion kind at one instruction boundary. */
struct ScopePredicate
{
    /** Instruction boundary the scope label marks. */
    std::size_t boundary = 0;

    /** Entangled at "<label>_computed", Product at "_uncomputed". */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Entangled;

    /** The breakpoint label the kind was inherited from. */
    std::string label;
};

/**
 * Map every ComputeScope breakpoint pair in `circ` to its inherited
 * assertion kinds (the same pairing rule as autoPlaceScopeAssertions,
 * but positional). Sorted by boundary.
 */
std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ);

} // namespace qsa::locate

#endif // QSA_LOCATE_PREDICATES_HH
