/**
 * @file
 * Expected-state predicates for bug localization.
 *
 * A BugLocator probe asks "does the program under test still look
 * like the reference program at boundary k?". The PredicateOracle
 * answers the *reference* half of that question: one exact
 * semi-classical simulation pass over the reference program captures,
 * at every instruction boundary, what a statistical assertion on the
 * probed register should expect — a classical point-mass value where
 * the tracked state is classical, a uniform superposition where it is
 * uniform, and an explicit outcome distribution otherwise.
 *
 * Scope structure is inherited separately: ComputeScope boundaries
 * ("<label>_computed" / "<label>_uncomputed", see circuit/scopes.hh)
 * name positions where the paper prescribes entangled / product
 * assertions, and scopeDerivedPredicates maps those labels onto
 * instruction boundaries so the locator can probe the inherited kind
 * instead of a plain marginal.
 */

#ifndef QSA_LOCATE_PREDICATES_HH
#define QSA_LOCATE_PREDICATES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assertions/spec.hh"
#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::locate
{

/** What the reference program promises at one instruction boundary. */
struct BoundaryPredicate
{
    /** Assertion kind the boundary supports (Classical /
     *  Superposition / Distribution). */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Classical;

    /** Expected register value for Classical predicates. */
    std::uint64_t expectedValue = 0;

    /** Exact outcome distribution for Distribution predicates. */
    std::vector<double> expectedProbs;
};

/**
 * See file comment. Construction runs the reference program once,
 * instruction by instruction, recording a predicate per boundary
 * (boundary k is the state after the first k instructions); cost is
 * one simulation plus one marginalisation per boundary.
 */
class PredicateOracle
{
  public:
    /**
     * @param reference the correct program
     * @param reg register the predicates describe
     * @param seed randomness for any mid-circuit collapse in the
     *        reference (the paper's benchmark programs have none)
     */
    PredicateOracle(const circuit::Circuit &reference,
                    const circuit::QubitRegister &reg,
                    std::uint64_t seed = 0x51c0ffee);

    /** Number of boundaries (reference instruction count + 1). */
    std::size_t numBoundaries() const { return preds.size(); }

    /** Predicate at a boundary. */
    const BoundaryPredicate &at(std::size_t boundary) const;

    /**
     * Build the assertion spec testing this oracle's predicate at a
     * boundary, bound to the given breakpoint label.
     */
    assertions::AssertionSpec specAt(std::size_t boundary,
                                     const std::string &breakpoint,
                                     double alpha) const;

  private:
    circuit::QubitRegister reg;
    std::vector<BoundaryPredicate> preds;
};

/** A scope-inherited assertion kind at one instruction boundary. */
struct ScopePredicate
{
    /** Instruction boundary the scope label marks. */
    std::size_t boundary = 0;

    /** Entangled at "<label>_computed", Product at "_uncomputed". */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Entangled;

    /** The breakpoint label the kind was inherited from. */
    std::string label;
};

/**
 * Map every ComputeScope breakpoint pair in `circ` to its inherited
 * assertion kinds (the same pairing rule as autoPlaceScopeAssertions,
 * but positional). Sorted by boundary.
 */
std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ);

} // namespace qsa::locate

#endif // QSA_LOCATE_PREDICATES_HH
