/**
 * @file
 * Expected-state predicates for bug localization.
 *
 * A BugLocator probe asks "does the program under test still look
 * like the reference program at boundary k?". The PredicateOracle
 * answers the *reference* half of that question: one exact
 * measurement-resolved pass over the reference program captures, at
 * every instruction boundary, what a statistical assertion on the
 * probed register should expect — a classical point-mass value where
 * the tracked state is classical, a uniform superposition where it is
 * uniform, and an explicit outcome distribution otherwise.
 *
 * Mid-circuit measurement is handled exactly: the pass tracks the
 * full outcome *mixture* (circuit::stepBranches), conditioning each
 * branch's classically-controlled instructions on that branch's own
 * recorded outcomes, and the boundary predicate describes the
 * probability-weighted marginal over all branches. That is precisely
 * the distribution a Resimulate-mode ensemble samples when it
 * re-simulates the truncated program once per trial, so the oracle's
 * predicates stay exact past any number of measurements (at a branch
 * count exponential in the nondeterministic ones — capped, fatal
 * beyond). For measurement-free programs the pass has a single branch
 * and is bit-identical to the previous semi-classical simulation.
 *
 * Scope structure is inherited separately: ComputeScope boundaries
 * ("<label>_computed" / "<label>_uncomputed", see circuit/scopes.hh)
 * name positions where the paper prescribes entangled / product
 * assertions, and scopeDerivedPredicates maps those labels onto
 * instruction boundaries so the locator can probe the inherited kind
 * instead of a plain marginal.
 */

#ifndef QSA_LOCATE_PREDICATES_HH
#define QSA_LOCATE_PREDICATES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assertions/spec.hh"
#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::locate
{

/** What the reference program promises at one instruction boundary. */
struct BoundaryPredicate
{
    /** Assertion kind the boundary supports (Classical /
     *  Superposition / Distribution). */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Classical;

    /** Expected register value for Classical predicates. */
    std::uint64_t expectedValue = 0;

    /** Exact outcome distribution for Distribution predicates. */
    std::vector<double> expectedProbs;
};

/**
 * See file comment. Construction runs the reference program once,
 * instruction by instruction, recording a predicate per boundary
 * (boundary k is the state after the first k instructions); cost is
 * one measurement-resolved simulation plus one marginalisation per
 * recorded boundary and branch.
 */
class PredicateOracle
{
  public:
    /**
     * @param reference the correct program
     * @param reg register the predicates describe
     * @param seed retained for interface stability; the pass is now
     *        exact (it enumerates mid-circuit outcomes instead of
     *        sampling them) and draws no randomness
     */
    PredicateOracle(const circuit::Circuit &reference,
                    const circuit::QubitRegister &reg,
                    std::uint64_t seed = 0x51c0ffee);

    /**
     * As above, but record predicates only at the given boundaries —
     * the memory-lean form for callers that probe a sparse boundary
     * set with a wide register (mirror probes keep one full-space
     * predicate per mirror segment start, not per instruction).
     */
    PredicateOracle(const circuit::Circuit &reference,
                    const circuit::QubitRegister &reg,
                    std::uint64_t seed,
                    const std::vector<std::size_t> &boundaries);

    /** Number of boundaries (reference instruction count + 1). */
    std::size_t numBoundaries() const { return totalBoundaries; }

    /** Predicate at a (recorded) boundary. */
    const BoundaryPredicate &at(std::size_t boundary) const;

    /**
     * Build the assertion spec testing this oracle's predicate at a
     * boundary, bound to the given breakpoint label.
     */
    assertions::AssertionSpec specAt(std::size_t boundary,
                                     const std::string &breakpoint,
                                     double alpha) const;

  private:
    circuit::QubitRegister reg;
    std::size_t totalBoundaries = 0;
    std::map<std::size_t, BoundaryPredicate> preds;

    void build(const circuit::Circuit &reference,
               const std::vector<std::size_t> *boundaries);
};

/** A scope-inherited assertion kind at one instruction boundary. */
struct ScopePredicate
{
    /** Instruction boundary the scope label marks. */
    std::size_t boundary = 0;

    /** Entangled at "<label>_computed", Product at "_uncomputed". */
    assertions::AssertionKind kind =
        assertions::AssertionKind::Entangled;

    /** The breakpoint label the kind was inherited from. */
    std::string label;
};

/**
 * Map every ComputeScope breakpoint pair in `circ` to its inherited
 * assertion kinds (the same pairing rule as autoPlaceScopeAssertions,
 * but positional). Sorted by boundary.
 */
std::vector<ScopePredicate>
scopeDerivedPredicates(const circuit::Circuit &circ);

} // namespace qsa::locate

#endif // QSA_LOCATE_PREDICATES_HH
