/**
 * @file
 * BugLocator implementation.
 */

#include "locate/locate.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "analyze/clifford.hh"
#include "assertions/checker.hh"
#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/obs.hh"
#include "runtime/batch.hh"
#include "sim/statevector.hh"

namespace qsa::locate
{

namespace
{

/** Breakpoint label terminating a mirror-probe program. */
const std::string kProbeLabel = "qsa_locate_probe";

/**
 * Breakpoint label between a Resimulate mirror probe's suspect prefix
 * and its adjoint unwind (the direct-marginal half of a dual probe).
 */
const std::string kProbePreLabel = "qsa_locate_probe_pre";

/** Boundary-breakpoint prefix for predicate probes. */
const std::string kBoundaryPrefix = "qsa_locate_b";

/**
 * Label prefix renaming the embedded reference copy's measurement
 * records and breakpoints inside a swap-test probe, so the two
 * program copies keep disjoint classical records.
 */
const std::string kRefPrefix = "qsa_locate_ref:";

/**
 * Seed salt separating swap-test probe streams from mirror probe
 * streams at the same boundary (an Auto search runs both).
 */
constexpr std::uint64_t kSwapSeedSalt = 0x5caff07dba5e11e5ULL;

/**
 * Per-frame seed salt for rotated-marginal probes (each frame's
 * ensemble is an independent stream at the same boundary).
 */
std::uint64_t
frameSeedSalt(Frame frame)
{
    return 0x0f7a7edba5e5ULL * (static_cast<std::uint64_t>(frame) + 1);
}

/** Probeable instruction: unitary gate or a no-op marker. */
bool
probeable(const circuit::Instruction &inst)
{
    if (!inst.condLabel.empty())
        return false;
    return circuit::gateKindInvertible(inst.kind) ||
           inst.kind == circuit::GateKind::Breakpoint;
}

/**
 * Instruction a Resimulate-mode mirror segment can span: anything
 * whose adjoint exists, conditioned or not (a conditioned gate
 * inverts under its own condition — exact within a measure-free
 * segment), plus inert markers. Measure and PrepZ terminate segments.
 */
bool
segmentSpans(const circuit::Instruction &inst)
{
    return circuit::gateKindInvertible(inst.kind) ||
           inst.kind == circuit::GateKind::Breakpoint;
}

/**
 * Structural equality of the non-invertible instructions mirror
 * probes must cross in Resimulate mode: a measure/reset boundary is
 * crossable only when both programs perform the identical operation
 * there (same kind, qubits, label, and classical condition), so the
 * suspect prefix's recorded outcomes are drawn from the same
 * measurements the reference's conditioned gates refer to.
 */
bool
alignedNonInvertible(const circuit::Instruction &a,
                     const circuit::Instruction &b)
{
    return a.kind == b.kind && a.targets == b.targets &&
           a.controls == b.controls && a.label == b.label &&
           a.bit == b.bit && a.condLabel == b.condLabel &&
           a.condValue == b.condValue;
}

/** Per-boundary probe seed (escalation keeps the boundary's stream). */
std::uint64_t
seedFor(std::uint64_t master, std::size_t boundary)
{
    return master + 0x9e3779b97f4a7c15ULL * (boundary + 1);
}

assertions::CheckConfig
baseConfig(const LocateConfig &cfg)
{
    assertions::CheckConfig cc;
    cc.ensembleSize = cfg.ensembleSize;
    cc.mode = cfg.mode;
    cc.seed = cfg.seed;
    cc.numThreads = cfg.numThreads;
    cc.fuseGates = cfg.fuseGates;
    return cc;
}

/** The oracle derivation knobs of a locate config (predicates.hh). */
OracleOptions
oracleOptionsFor(const LocateConfig &cfg)
{
    OracleOptions opts;
    opts.mode = cfg.oracleMode;
    if (cfg.oracleTrials != 0)
        opts.sampleTrials = cfg.oracleTrials;
    return opts;
}

ProbeRecord
toRecord(std::size_t boundary,
         const assertions::AssertionOutcome &out)
{
    ProbeRecord rec;
    rec.boundary = boundary;
    rec.kind = out.spec.kind;
    rec.ensembleSize = out.ensembleSize;
    rec.pValue = out.pValue;
    rec.failed = !out.passed;
    return rec;
}

/**
 * Fold a probe's component outcomes into one record: the probe fails
 * when any component fails, reports the smallest component p-value,
 * the failing component's kind, and the summed ensemble cost. Shared
 * by every multi-component probe family (dual mirrors, the three
 * rotated frames).
 */
ProbeRecord
combineRecords(std::size_t boundary,
               const std::vector<assertions::AssertionOutcome> &outcomes)
{
    ProbeRecord rec;
    rec.boundary = boundary;
    rec.kind = outcomes.back().spec.kind;
    for (const auto &out : outcomes) {
        rec.ensembleSize += out.ensembleSize;
        rec.pValue = std::min(rec.pValue, out.pValue);
        if (!out.passed && !rec.failed) {
            rec.failed = true;
            rec.kind = out.spec.kind;
        }
    }
    return rec;
}

/** Probes per LinearScan batch chunk (memory bound, see probeAll). */
constexpr std::size_t kScanChunk = 64;

/**
 * Widest program the swap-test family accepts: a probe simulates two
 * embedded copies plus an ancilla (2n+1 qubits). Shared by the
 * SwapProber's gate and the Auto paths' escalation-availability
 * check (an Auto search on a wider program keeps its cheap family's
 * verdict instead of dying in a prober it may never need).
 *
 * Tensor-split probe trials (LocateConfig::tensorSwapProbes) simulate
 * the two halves on 2^n states and touch the 2^(2n+1) space only for
 * the ~n comparator gates, so per-prefix-gate probe cost is ~2^n, not
 * 2^(2n+1) — which lifts this gate from the historical 10. The bound
 * is now the comparator's full-size state itself (2^23 amplitudes =
 * 128 MiB per in-flight trial at n = 11).
 */
constexpr unsigned kSwapQubitGate = 11;

/**
 * Probeable range shared by the marginal-style families (predicate,
 * rotated, swap): under final-state sampling one sampled final state
 * cannot represent an outcome mixture, so the range clamps at the
 * first measurement or classically-conditioned instruction of either
 * program; Resimulate mode needs no clamp at all.
 */
std::size_t
clampedCommonBoundary(const circuit::Circuit &suspect,
                      const circuit::Circuit &reference, bool resim)
{
    const auto &si = suspect.instructions();
    const auto &ri = reference.instructions();
    std::size_t hi = std::min(si.size(), ri.size());
    if (!resim) {
        for (std::size_t i = 0; i < hi; ++i) {
            const bool blocked =
                si[i].kind == circuit::GateKind::Measure ||
                ri[i].kind == circuit::GateKind::Measure ||
                !si[i].condLabel.empty() || !ri[i].condLabel.empty();
            if (blocked) {
                hi = i;
                break;
            }
        }
    }
    fatal_if(hi == 0, "no probeable instruction boundary");
    return hi;
}

/**
 * Family-wise adjudication of a scanned probe family: Holm-Bonferroni
 * over the probes with standard reject-to-fail semantics. Entangled
 * probes stay at per-probe alpha — their *pass* is the rejection, so
 * a step-down correction would make a correct entangled boundary
 * harder to pass and could bracket defect-free code.
 */
std::vector<ProbeRecord>
adjudicateFamily(const std::vector<std::size_t> &boundaries,
                 std::vector<assertions::AssertionOutcome> outcomes,
                 bool family_wise, ProbeFamily family)
{
    if (family_wise) {
        std::vector<std::size_t> index;
        std::vector<assertions::AssertionOutcome> family;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (outcomes[i].spec.kind !=
                assertions::AssertionKind::Entangled) {
                index.push_back(i);
                family.push_back(outcomes[i]);
            }
        }
        assertions::applyHolmBonferroni(family);
        for (std::size_t j = 0; j < index.size(); ++j)
            outcomes[index[j]] = family[j];
    }

    std::vector<ProbeRecord> records;
    records.reserve(boundaries.size());
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
        records.push_back(toRecord(boundaries[i], outcomes[i]));
        records.back().family = family;
    }
    return records;
}

/** Copy a circuit with breakpoint markers dropped (for inversion). */
circuit::Circuit
stripMarkers(const circuit::Circuit &c)
{
    circuit::Circuit out(c.numQubits());
    for (const auto &inst : c.instructions()) {
        if (inst.kind == circuit::GateKind::Breakpoint)
            continue;
        circuit::Instruction copy = inst;
        if (copy.kind == circuit::GateKind::Unitary)
            copy.matrixId = out.addMatrix(c.matrix(inst.matrixId));
        out.append(copy);
    }
    return out;
}

/**
 * One probe family: adjudicate a single boundary (with sequential
 * escalation) or a whole boundary batch (with optional family-wise
 * control).
 */
class Prober
{
  public:
    virtual ~Prober() = default;

    virtual ProbeRecord
    probe(std::size_t boundary,
          const assertions::EscalationPolicy &policy) = 0;

    virtual std::vector<ProbeRecord>
    probeAll(const std::vector<std::size_t> &boundaries,
             bool family_wise) = 0;

    /** Largest probeable boundary. */
    virtual std::size_t hiBoundary() const = 0;
};

/**
 * Mirror probes: suspect prefix followed by the adjoint of the
 * reference prefix, asserted classically equal to the prep state.
 *
 * In Resimulate mode the adjoint covers the mirror *segment* — back
 * to the last measure/reset before the boundary — and the assertion
 * is the oracle's full-space mixture predicate at the segment start
 * (see locate.hh). A segment unwind alone has two blind spots once
 * the segment start is a measurement mixture rather than the
 * classical prologue: divergence whose only trace at the segment
 * start is a relative phase (a mixture marginal cannot see it the
 * way a point-mass fidelity check can), and divergence from an
 * *earlier* segment that the unwind of common instructions cancels.
 * Probes past the first measurement are therefore *dual*: the probe
 * program carries one breakpoint before the unwind asserting the
 * oracle's mixture predicate at the boundary itself (divergence that
 * reached any computational marginal) and one after the unwind
 * asserting the segment-start predicate (phase-sensitive within the
 * segment), each at alpha/2 so the pair keeps the probe's error
 * budget. Boundaries whose unwind reaches the classical prologue
 * keep the single point-mass assertion — in particular, on a
 * measurement-free program the Resimulate probe sequence is
 * spec-for-spec the same as the default mode's.
 *
 * A single (adaptive) probe runs on its own checker so escalation
 * rounds reuse the cached prefix statevector, with the ensemble
 * fanned across the runtime pool; a LinearScan batch fans probe-wise
 * through runtime::BatchRunner in bounded-memory chunks.
 */
class MirrorProber : public Prober
{
  public:
    MirrorProber(const circuit::Circuit &suspect,
                 const circuit::Circuit &reference,
                 const LocateConfig &cfg)
        : suspect(suspect), reference(reference), cfg(cfg),
          resim(cfg.mode == assertions::EnsembleMode::Resimulate),
          runner(cfg.numThreads)
    {
        fatal_if(suspect.numQubits() != reference.numQubits(),
                 "suspect and reference use different qubit spaces");
        fatal_if(suspect.numQubits() == 0, "empty qubit space");
        fatal_if(suspect.numQubits() > 24,
                 "mirror probes assert on the full qubit space; ",
                 suspect.numQubits(), " qubits is too wide — use "
                 "locateByPredicates on a register instead");
        fatal_if(resim && suspect.numQubits() > 16,
                 "Resimulate mirror probes hold a full-space mixture "
                 "distribution per segment start; ", suspect.numQubits(),
                 " qubits is too wide — use locateByPredicates on a "
                 "register instead");

        std::vector<unsigned> qubits(suspect.numQubits());
        for (unsigned q = 0; q < suspect.numQubits(); ++q)
            qubits[q] = q;
        allReg = circuit::QubitRegister("qsa_locate_all", qubits);

        const auto &si = suspect.instructions();
        const auto &ri = reference.instructions();
        const std::size_t common = std::min(si.size(), ri.size());

        // Common PrepZ prologue: boundaries at or below it compare
        // against the reference's tracked classical state; boundaries
        // above it get the adjoint-of-reference mirror appended.
        prologue = 0;
        while (prologue < common &&
               si[prologue].kind == circuit::GateKind::PrepZ &&
               ri[prologue].kind == circuit::GateKind::PrepZ)
            ++prologue;

        hi = common;
        for (std::size_t i = prologue; i < common; ++i) {
            if (resim) {
                // Resimulate probes cross measures and resets as long
                // as both programs perform the identical operation
                // there; structural divergence ends the mirrorable
                // range (the bracket still contains it: the last
                // segment's probes fail first).
                if (segmentSpans(si[i]) && segmentSpans(ri[i]))
                    continue;
                if (alignedNonInvertible(si[i], ri[i]))
                    continue;
            } else if (probeable(si[i]) && probeable(ri[i])) {
                continue;
            }
            hi = i;
            break;
        }
        fatal_if(hi == 0, "no probeable instruction boundary (does "
                 "the program start with a measurement?)");

        // Exact semi-classical tracking of the reference prologue:
        // the expected classical value at every boundary <= prologue.
        sim::StateVector state(reference.numQubits());
        std::map<std::string, std::uint64_t> meas;
        Rng rng(cfg.seed);
        refValues.push_back(basisValue(state));
        for (std::size_t k = 0; k < prologue; ++k) {
            const auto step = reference.sliceRange(k, k + 1);
            circuit::runCircuitOn(step, state, meas, rng);
            refValues.push_back(basisValue(state));
        }

        if (resim) {
            // Mirror segment starts: segStart[k] is the largest
            // boundary <= k with only invertible instructions in
            // between, i.e. where the adjoint unwind of the reference
            // segment lands.
            segStart.resize(hi + 1);
            segStart[0] = 0;
            for (std::size_t k = 1; k <= hi; ++k) {
                segStart[k] =
                    segmentSpans(ri[k - 1]) ? segStart[k - 1] : k;
            }
            // The eager oracle records the full-space mixture
            // predicate at every segment start — and, for a scan
            // that will probe every boundary anyway, at every
            // boundary. An adaptive search touches O(log n)
            // boundaries, so its dual probes derive the per-boundary
            // marginal predicate lazily instead (oracleAt), keeping
            // memory at O(probed boundaries * 2^n), not O(n * 2^n).
            scanAll = cfg.strategy == Strategy::LinearScan;
            std::vector<std::size_t> boundaries;
            if (scanAll) {
                boundaries.resize(hi + 1);
                for (std::size_t k = 0; k <= hi; ++k)
                    boundaries[k] = k;
            } else {
                boundaries.assign(segStart.begin(), segStart.end());
                std::sort(boundaries.begin(), boundaries.end());
                boundaries.erase(std::unique(boundaries.begin(),
                                             boundaries.end()),
                                 boundaries.end());
            }
            oracle = std::make_unique<PredicateOracle>(
                reference, allReg, cfg.seed, boundaries,
                oracleOptionsFor(cfg));
        }
    }

    ProbeRecord
    probe(std::size_t boundary,
          const assertions::EscalationPolicy &policy) override
    {
        // One checker per probe program: escalated rounds then reuse
        // its cached prefix statevector and only resample shots, and
        // the boundary-keyed seed makes each round extend the earlier
        // ensemble (sequential testing, deterministic).
        const circuit::Circuit program = buildProbe(boundary);
        auto cc = baseConfig(cfg);
        cc.seed = seedFor(cfg.seed, boundary);
        const assertions::AssertionChecker checker(program, cc);

        const auto specs = specsFor(boundary, /*family_wise=*/false);
        std::vector<assertions::AssertionOutcome> outcomes;
        outcomes.reserve(specs.size());
        for (const auto &spec : specs)
            outcomes.push_back(checker.checkEscalated(spec, policy));
        return combineOutcomes(boundary, outcomes);
    }

    std::vector<ProbeRecord>
    probeAll(const std::vector<std::size_t> &boundaries,
             bool family_wise) override
    {
        // Chunked batches: each chunk's checkers (and their cached
        // prefix statevectors — a full 2^n vector per probe) are
        // dropped before the next chunk starts, bounding the scan's
        // memory at kScanChunk prefixes.
        std::vector<assertions::AssertionOutcome> outcomes;
        std::vector<std::size_t> spans; // specs per boundary
        spans.reserve(boundaries.size());
        for (std::size_t base = 0; base < boundaries.size();
             base += kScanChunk) {
            const std::size_t end =
                std::min(boundaries.size(), base + kScanChunk);
            std::deque<circuit::Circuit> programs;
            std::vector<runtime::BatchItem> items;
            items.reserve(end - base);
            for (std::size_t i = base; i < end; ++i) {
                programs.push_back(buildProbe(boundaries[i]));
                auto cc = baseConfig(cfg);
                cc.seed = seedFor(cfg.seed, boundaries[i]);
                const auto specs =
                    specsFor(boundaries[i], family_wise);
                spans.push_back(specs.size());
                items.push_back({&programs.back(), specs, cc});
            }
            for (const auto &per_item : runner.checkAll(items)) {
                outcomes.insert(outcomes.end(), per_item.begin(),
                                per_item.end());
            }
        }
        // Family-wise control over every component assertion (mirror
        // specs are never Entangled, so plain Holm applies), then
        // fold the components back into one record per boundary.
        if (family_wise)
            assertions::applyHolmBonferroni(outcomes);
        std::vector<ProbeRecord> records;
        records.reserve(boundaries.size());
        std::size_t cursor = 0;
        for (std::size_t i = 0; i < boundaries.size(); ++i) {
            const std::vector<assertions::AssertionOutcome> group(
                outcomes.begin() + cursor,
                outcomes.begin() + cursor + spans[i]);
            cursor += spans[i];
            records.push_back(combineOutcomes(boundaries[i], group));
        }
        return records;
    }

    std::size_t hiBoundary() const override { return hi; }

    /**
     * True when some probeable boundary unwinds onto a measurement
     * mixture rather than the classical prologue: there the mirror
     * family's witnesses are computational marginals only, so an
     * all-passing run cannot certify the absence of phase divergence
     * (ProbeFamily::Auto escalates on this).
     */
    bool
    hasMixtureSegments() const
    {
        for (std::size_t k = 1; k <= hi; ++k) {
            if (dualProbe(k))
                return true;
        }
        return false;
    }

  private:
    const circuit::Circuit &suspect;
    const circuit::Circuit &reference;
    LocateConfig cfg;
    bool resim = false;
    runtime::BatchRunner runner;
    circuit::QubitRegister allReg;
    std::size_t prologue = 0;
    std::size_t hi = 0;
    std::vector<std::uint64_t> refValues;
    std::vector<std::size_t> segStart;
    std::unique_ptr<PredicateOracle> oracle;
    bool scanAll = false;
    mutable std::map<std::size_t, PredicateOracle> lazyOracles;

    static std::uint64_t
    basisValue(const sim::StateVector &state)
    {
        const auto &amps = state.amplitudes();
        for (std::uint64_t v = 0; v < amps.size(); ++v) {
            if (std::norm(amps[v]) >= 1.0 - 1e-9)
                return v;
        }
        panic("reference prologue state is not a basis state");
    }

    /** Where this boundary's adjoint unwind lands. */
    std::size_t
    segStartFor(std::size_t boundary) const
    {
        return resim ? segStart[boundary]
                     : std::min(boundary, prologue);
    }

    /**
     * The oracle holding the full-space predicate at `boundary`: the
     * eager one where it recorded the boundary (segment starts; every
     * boundary under LinearScan), else a lazily built and memoised
     * single-boundary oracle (one extra measurement-resolved pass —
     * cheap next to the probe's ensemble). Called from the search
     * thread only; probe workers never touch the cache.
     */
    const PredicateOracle &
    oracleAt(std::size_t boundary) const
    {
        if (scanAll || segStart[boundary] == boundary)
            return *oracle;
        auto it = lazyOracles.find(boundary);
        if (it == lazyOracles.end()) {
            it = lazyOracles
                     .emplace(boundary,
                              PredicateOracle(
                                  reference, allReg, cfg.seed,
                                  std::vector<std::size_t>{boundary},
                                  oracleOptionsFor(cfg)))
                     .first;
        }
        return it->second;
    }

    /**
     * True when the boundary needs the dual (marginal + unwind)
     * probe: its unwind lands on a measurement mixture, not the
     * classical prologue, and is non-trivial.
     */
    bool
    dualProbe(std::size_t boundary) const
    {
        if (!resim)
            return false;
        const std::size_t start = segStartFor(boundary);
        return start > prologue && start < boundary;
    }

    circuit::Circuit
    buildProbe(std::size_t boundary) const
    {
        circuit::Circuit probe = suspect.sliceRange(0, boundary);
        if (dualProbe(boundary))
            probe.breakpoint(kProbePreLabel);
        const std::size_t start = segStartFor(boundary);
        if (boundary > start) {
            // The segment is measure-free by construction, so a
            // conditioned gate's record cannot change inside it and
            // conditioned inversion is exact.
            const circuit::Circuit seg = stripMarkers(
                reference.sliceRange(start, boundary));
            probe.appendCircuit(
                seg.inverse(/*invert_conditioned=*/true));
        }
        probe.breakpoint(kProbeLabel);
        return probe;
    }

    /**
     * The probe's component assertions. Adaptive probes split their
     * alpha across a dual probe's two components (Bonferroni); a
     * LinearScan family keeps per-spec alpha and lets the batch-level
     * Holm-Bonferroni step-down control the whole family instead.
     */
    std::vector<assertions::AssertionSpec>
    specsFor(std::size_t boundary, bool family_wise) const
    {
        std::vector<assertions::AssertionSpec> specs;
        if (!resim) {
            assertions::AssertionSpec spec;
            spec.kind = assertions::AssertionKind::Classical;
            spec.breakpoint = kProbeLabel;
            spec.regA = allReg;
            spec.expectedValue =
                refValues[std::min(boundary, prologue)];
            spec.alpha = cfg.alpha;
            spec.name = "mirror@" + std::to_string(boundary);
            specs.push_back(std::move(spec));
            return specs;
        }

        const bool dual = dualProbe(boundary);
        const double alpha =
            dual && !family_wise ? cfg.alpha / 2.0 : cfg.alpha;
        if (dual) {
            // Direct mixture predicate at the boundary itself:
            // divergence that reached any computational marginal,
            // including divergence from earlier segments the unwind
            // would cancel.
            assertions::AssertionSpec pre =
                oracleAt(boundary).specAt(boundary, kProbePreLabel,
                                          alpha);
            pre.name = "mirror-marginal@" + std::to_string(boundary);
            specs.push_back(std::move(pre));
        }
        // The unwound state must read as the reference's mixture at
        // the segment start (for a measurement-free program that
        // start is the prologue and the predicate is the same
        // classical point mass as the default mode's).
        assertions::AssertionSpec post = oracle->specAt(
            segStartFor(boundary), kProbeLabel, alpha);
        post.name = "mirror@" + std::to_string(boundary);
        specs.push_back(std::move(post));
        return specs;
    }

    /**
     * combineRecords plus the mirror family's metadata: a dual probe
     * (outcomes [pre-marginal, segment-unwind]) that rejected only
     * through the computational pre-marginal while its phase-
     * sensitive unwind passed is flagged phase-ambiguous — the
     * divergence was transported here, not necessarily born here.
     */
    static ProbeRecord
    combineOutcomes(
        std::size_t boundary,
        const std::vector<assertions::AssertionOutcome> &outcomes)
    {
        ProbeRecord rec = combineRecords(boundary, outcomes);
        rec.family = ProbeFamily::SegmentMirror;
        if (outcomes.size() == 2) {
            rec.phaseAmbiguous = rec.failed && !outcomes[0].passed &&
                                 outcomes[1].passed;
        }
        return rec;
    }
};

/**
 * Predicate probes: the suspect program instrumented at every
 * boundary, one persistent checker (shared prefix caches), and the
 * reference oracle's marginal predicate — or a scope-inherited
 * entangled/product kind — per boundary.
 */
class PredicateProber : public Prober
{
  public:
    PredicateProber(const circuit::Circuit &suspect,
                    const circuit::Circuit &reference,
                    const LocateConfig &cfg,
                    const circuit::QubitRegister &reg_a,
                    const circuit::QubitRegister *reg_b)
        : cfg(cfg), regA(reg_a),
          instrumented(suspect.withBoundaryBreakpoints(kBoundaryPrefix)),
          oracle(reference, reg_a, cfg.seed, oracleOptionsFor(cfg)),
          checker(instrumented, baseConfig(cfg)), runner(cfg.numThreads)
    {
        fatal_if(suspect.numQubits() != reference.numQubits(),
                 "suspect and reference use different qubit spaces");

        // Under final-state sampling predicate probes survive
        // mid-program resets (the reference oracle tracks them
        // exactly) but clamp per clampedCommonBoundary; in Resimulate
        // mode every trial re-simulates the truncated prefix
        // (measurements included) and the oracle's predicate is the
        // exact mixture marginal, so every boundary is probeable.
        hi = clampedCommonBoundary(
            suspect, reference,
            cfg.mode == assertions::EnsembleMode::Resimulate);

        if (reg_b != nullptr) {
            regB = *reg_b;
            for (const auto &scoped : scopeDerivedPredicates(suspect))
                scopeKinds[scoped.boundary] = scoped.kind;
        }
    }

    ProbeRecord
    probe(std::size_t boundary,
          const assertions::EscalationPolicy &policy) override
    {
        ProbeRecord rec =
            toRecord(boundary,
                     checker.checkEscalated(specFor(boundary),
                                            policy));
        rec.family = ProbeFamily::MixtureMarginal;
        return rec;
    }

    std::vector<ProbeRecord>
    probeAll(const std::vector<std::size_t> &boundaries,
             bool family_wise) override
    {
        // Chunked like the mirror scan: the per-chunk checker (and
        // its one cached prefix statevector per probed breakpoint)
        // is dropped before the next chunk starts.
        std::vector<assertions::AssertionOutcome> outcomes;
        outcomes.reserve(boundaries.size());
        for (std::size_t base = 0; base < boundaries.size();
             base += kScanChunk) {
            const std::size_t end =
                std::min(boundaries.size(), base + kScanChunk);
            std::vector<assertions::AssertionSpec> specs;
            specs.reserve(end - base);
            for (std::size_t i = base; i < end; ++i)
                specs.push_back(specFor(boundaries[i]));
            const std::vector<runtime::BatchItem> items{
                {&instrumented, specs, baseConfig(cfg)}};
            const auto chunk = runner.checkAll(items)[0];
            outcomes.insert(outcomes.end(), chunk.begin(),
                            chunk.end());
        }
        return adjudicateFamily(boundaries, std::move(outcomes),
                                family_wise,
                                ProbeFamily::MixtureMarginal);
    }

    std::size_t hiBoundary() const override { return hi; }

  private:
    LocateConfig cfg;
    circuit::QubitRegister regA;
    circuit::QubitRegister regB;
    circuit::Circuit instrumented;
    PredicateOracle oracle;
    assertions::AssertionChecker checker;
    runtime::BatchRunner runner;
    std::map<std::size_t, assertions::AssertionKind> scopeKinds;
    std::size_t hi = 0;

    assertions::AssertionSpec
    specFor(std::size_t boundary) const
    {
        const std::string label =
            kBoundaryPrefix + std::to_string(boundary);
        const auto scoped = scopeKinds.find(boundary);
        if (scoped != scopeKinds.end()) {
            assertions::AssertionSpec spec;
            spec.kind = scoped->second;
            spec.breakpoint = label;
            spec.regA = regA;
            spec.regB = regB;
            spec.alpha = cfg.alpha;
            spec.name = "scope@" + std::to_string(boundary);
            return spec;
        }
        return oracle.specAt(boundary, label, cfg.alpha);
    }
};

/**
 * Swap-test probes: the probe program runs the suspect prefix on
 * qubits [0, n), the reference prefix — qubit indices shifted and
 * classical labels renamed (Circuit::embedded) — on [n, 2n), then an
 * H / controlled-SWAP-per-register-qubit / H comparator on ancilla
 * qubit 2n. For pure pair states the ancilla reads 0 with
 * probability (1 + |<psi|phi>|^2) / 2; the partial swap test over a
 * register measures the reduced-state overlap, and averaging over
 * independently sampled suspect and reference measurement branches
 * makes the unconditional ancilla distribution
 * Bernoulli((1 + tr(rho sigma)) / 2) for the two reduced mixtures.
 * The OverlapOracle supplies the null value (sigma = rho): a
 * classical point mass at 0 wherever the reference's reduced state
 * is pure — there a single observed 1 refutes the null outright — a
 * two-point distribution otherwise.
 *
 * Witness soundness: common unitary evolution of the register
 * preserves tr(rho sigma) exactly, so once a defective instruction
 * lowers the overlap the deficit persists at every later boundary of
 * the same measure-free segment — the monotone witness the adaptive
 * bracket needs, including for divergence invisible to every
 * computational marginal (relative phases, conditioned frame
 * errors). Across aligned measurements the deficit generally
 * survives (both mixtures pass through the same dephasing channel)
 * but is no longer invariant; the confirmation probes at the
 * converged bracket guard the verdict there, as they do for the
 * mirror family.
 *
 * Register scoping is the sensitivity lever past measurements: a
 * full-space comparator's overlap signal is scaled by the squared
 * branch weights once measured qubits make the branches nearly
 * orthogonal, while a register that excludes them keeps a
 * high-purity null (see OverlapOracle). locateByPredicates(reg) with
 * ProbeFamily::SwapTest/Auto is therefore the sharp tool; the
 * full-space form backs locate()'s families on measure-light
 * programs.
 *
 * Cost: each probe simulates 2n+1 qubits, so the family is gated to
 * small programs and is the *escalation* family, not the default.
 */
class SwapProber : public Prober
{
  public:
    /** @param reg comparator register (nullptr = the full space) */
    SwapProber(const circuit::Circuit &suspect,
               const circuit::Circuit &reference,
               const LocateConfig &cfg,
               const circuit::QubitRegister *reg)
        : suspect(suspect), reference(reference), cfg(cfg),
          resim(cfg.mode == assertions::EnsembleMode::Resimulate),
          runner(cfg.numThreads)
    {
        fatal_if(suspect.numQubits() != reference.numQubits(),
                 "suspect and reference use different qubit spaces");
        fatal_if(suspect.numQubits() == 0, "empty qubit space");
        n = suspect.numQubits();
        fatal_if(n > kSwapQubitGate,
                 "swap-test probes simulate two embedded program "
                 "copies plus an ancilla (", 2 * n + 1,
                 " qubits for this program); ", n, " qubits is too "
                 "wide — use locateByPredicates with "
                 "ProbeFamily::RotatedMarginal on a register instead");
        anc = 2 * n;
        ancReg = circuit::QubitRegister("qsa_swap_anc", {anc});
        if (reg != nullptr) {
            swapQubits = reg->qubits();
            oracleQubits = reg->qubits();
        } else {
            swapQubits.resize(n);
            for (unsigned q = 0; q < n; ++q)
                swapQubits[q] = q;
            // Empty register selects the oracle's pairwise-fidelity
            // full-space purity (no 2^n x 2^n density matrix).
        }

        // In Resimulate mode the probe runs both copies' measurements
        // per trial, so even structurally diverging programs stay
        // comparable past them.
        hi = clampedCommonBoundary(suspect, reference, resim);
    }

    ProbeRecord
    probe(std::size_t boundary,
          const assertions::EscalationPolicy &policy) override
    {
        const circuit::Circuit program = buildProbe(boundary);
        auto cc = baseConfig(cfg);
        cc.seed = seedFor(cfg.seed ^ kSwapSeedSalt, boundary);
        if (cfg.tensorSwapProbes)
            cc.tensorSplit = n;
        const assertions::AssertionChecker checker(program, cc);
        ProbeRecord rec = toRecord(
            boundary,
            checker.checkEscalated(specFor(boundary), policy));
        rec.family = ProbeFamily::SwapTest;
        return rec;
    }

    std::vector<ProbeRecord>
    probeAll(const std::vector<std::size_t> &boundaries,
             bool family_wise) override
    {
        // A scan wants every boundary's purity: one eager
        // measurement-resolved pass beats one lazy pass per
        // boundary. Built here rather than in the constructor so an
        // Auto search that only ever issues its single decisive
        // escalation-check probe never pays for it.
        if (!oracle) {
            oracle = std::make_unique<OverlapOracle>(
                reference, oracleQubits, boundaries);
        }
        std::vector<assertions::AssertionOutcome> outcomes;
        outcomes.reserve(boundaries.size());
        for (std::size_t base = 0; base < boundaries.size();
             base += kScanChunk) {
            const std::size_t end =
                std::min(boundaries.size(), base + kScanChunk);
            std::deque<circuit::Circuit> programs;
            std::vector<runtime::BatchItem> items;
            items.reserve(end - base);
            for (std::size_t i = base; i < end; ++i) {
                programs.push_back(buildProbe(boundaries[i]));
                auto cc = baseConfig(cfg);
                cc.seed =
                    seedFor(cfg.seed ^ kSwapSeedSalt, boundaries[i]);
                if (cfg.tensorSwapProbes)
                    cc.tensorSplit = n;
                items.push_back({&programs.back(),
                                 {specFor(boundaries[i])}, cc});
            }
            for (const auto &per_item : runner.checkAll(items)) {
                outcomes.insert(outcomes.end(), per_item.begin(),
                                per_item.end());
            }
        }
        return adjudicateFamily(boundaries, std::move(outcomes),
                                family_wise, ProbeFamily::SwapTest);
    }

    std::size_t hiBoundary() const override { return hi; }

  private:
    const circuit::Circuit &suspect;
    const circuit::Circuit &reference;
    LocateConfig cfg;
    bool resim = false;
    runtime::BatchRunner runner;
    unsigned n = 0;
    unsigned anc = 0;
    circuit::QubitRegister ancReg;
    std::vector<unsigned> swapQubits;
    std::vector<unsigned> oracleQubits; // empty = full space
    std::size_t hi = 0;

    /** Eager purity oracle, built on the first probeAll. */
    std::unique_ptr<OverlapOracle> oracle;

    /**
     * Adaptive searches touch O(log n) boundaries: their purities are
     * derived lazily (one measurement-resolved pass each, cheap next
     * to the probe's ensemble) and memoised. Search-thread only.
     */
    mutable std::map<std::size_t, double> purityMemo;

    double
    purityAt(std::size_t boundary) const
    {
        auto it = purityMemo.find(boundary);
        if (it != purityMemo.end())
            return it->second;
        double purity;
        if (oracle && oracle->recorded(boundary)) {
            purity = oracle->purityAt(boundary);
        } else {
            const OverlapOracle one(reference, oracleQubits,
                                    {boundary});
            purity = one.purityAt(boundary);
        }
        return purityMemo.emplace(boundary, purity).first->second;
    }

    circuit::Circuit
    buildProbe(std::size_t boundary) const
    {
        const unsigned space = 2 * n + 1;
        circuit::Circuit probe(space);
        probe.appendCircuit(
            suspect.sliceRange(0, boundary).embedded(space, 0));
        probe.appendCircuit(reference.sliceRange(0, boundary)
                                .embedded(space, n, kRefPrefix));
        probe.h(anc);
        for (unsigned q : swapQubits)
            probe.cswap(anc, q, n + q);
        probe.h(anc);
        probe.breakpoint(kProbeLabel);
        return probe;
    }

    assertions::AssertionSpec
    specFor(std::size_t boundary) const
    {
        const double p0 = 0.5 * (1.0 + purityAt(boundary));
        assertions::AssertionSpec spec;
        spec.breakpoint = kProbeLabel;
        spec.regA = ancReg;
        spec.alpha = cfg.alpha;
        spec.name = "swap@" + std::to_string(boundary);
        if (p0 >= 1.0 - 1e-9) {
            // Pure reference state: under the null the comparator
            // never reads 1, so one observed 1 is decisive.
            spec.kind = assertions::AssertionKind::Classical;
            spec.expectedValue = 0;
        } else {
            spec.kind = assertions::AssertionKind::Distribution;
            spec.expectedProbs = {p0, 1.0 - p0};
        }
        return spec;
    }
};

/**
 * Rotated-basis predicate probes: each boundary is adjudicated in
 * the Z, X and Y measurement frames at once. The probe program for
 * (boundary, frame) is the suspect prefix with the frame's
 * basis-change epilogue appended to the probed register, and the
 * assertion is the oracle's frame-transported mixture marginal
 * (PredicateOracle with frames). An adaptive probe Bonferroni-splits
 * its alpha across the three frames; a LinearScan batch keeps
 * per-spec alpha and lets Holm-Bonferroni control the whole
 * 3-per-boundary family. For a one-qubit register the three frames
 * determine the Bloch vector, so any divergence *on the register* is
 * visible the instruction it appears — including pure phase — at
 * three cheap n-qubit probes per boundary instead of a 2n+1-qubit
 * swap test. The witness is still not monotone (divergence can
 * rotate off the probed register later), so brackets carry the same
 * first-visible caveat as the computational marginal family.
 */
class RotatedProber : public Prober
{
  public:
    RotatedProber(const circuit::Circuit &suspect,
                  const circuit::Circuit &reference,
                  const LocateConfig &cfg,
                  const circuit::QubitRegister &reg)
        : cfg(cfg), regA(reg), suspect(suspect),
          reference(reference), runner(cfg.numThreads)
    {
        fatal_if(suspect.numQubits() != reference.numQubits(),
                 "suspect and reference use different qubit spaces");

        hi = clampedCommonBoundary(
            suspect, reference,
            cfg.mode == assertions::EnsembleMode::Resimulate);
    }

    ProbeRecord
    probe(std::size_t boundary,
          const assertions::EscalationPolicy &policy) override
    {
        std::vector<assertions::AssertionOutcome> outcomes;
        outcomes.reserve(3);
        for (Frame frame : kAllFrames) {
            const circuit::Circuit program =
                buildProbe(boundary, frame);
            auto cc = baseConfig(cfg);
            cc.seed = seedFor(cfg.seed ^ frameSeedSalt(frame),
                              boundary);
            const assertions::AssertionChecker checker(program, cc);
            outcomes.push_back(checker.checkEscalated(
                specFor(oracleAt(boundary), boundary, frame,
                        cfg.alpha / 3.0),
                policy));
        }
        ProbeRecord rec = combineRecords(boundary, outcomes);
        rec.family = ProbeFamily::RotatedMarginal;
        return rec;
    }

    std::vector<ProbeRecord>
    probeAll(const std::vector<std::size_t> &boundaries,
             bool family_wise) override
    {
        const double alpha =
            family_wise ? cfg.alpha : cfg.alpha / 3.0;
        // A scan touches every boundary: one eager three-frame pass
        // beats one lazy pass per boundary (built here, not in the
        // constructor, so adaptive searches — which probe O(log n)
        // boundaries through the oracleAt memo — never pay for it).
        if (!scanOracle) {
            scanOracle = std::make_unique<PredicateOracle>(
                reference, regA, cfg.seed, &boundaries,
                std::vector<Frame>{Frame::Z, Frame::X, Frame::Y},
                oracleOptionsFor(cfg));
        }
        std::vector<assertions::AssertionOutcome> outcomes;
        for (std::size_t base = 0; base < boundaries.size();
             base += kScanChunk) {
            const std::size_t end =
                std::min(boundaries.size(), base + kScanChunk);
            std::deque<circuit::Circuit> programs;
            std::vector<runtime::BatchItem> items;
            items.reserve(3 * (end - base));
            for (std::size_t i = base; i < end; ++i) {
                for (Frame frame : kAllFrames) {
                    programs.push_back(
                        buildProbe(boundaries[i], frame));
                    auto cc = baseConfig(cfg);
                    cc.seed = seedFor(cfg.seed ^ frameSeedSalt(frame),
                                      boundaries[i]);
                    items.push_back(
                        {&programs.back(),
                         {specFor(*scanOracle, boundaries[i], frame,
                                  alpha)},
                         cc});
                }
            }
            for (const auto &per_item : runner.checkAll(items)) {
                outcomes.insert(outcomes.end(), per_item.begin(),
                                per_item.end());
            }
        }
        if (family_wise)
            assertions::applyHolmBonferroni(outcomes);
        std::vector<ProbeRecord> records;
        records.reserve(boundaries.size());
        for (std::size_t i = 0; i < boundaries.size(); ++i) {
            const std::vector<assertions::AssertionOutcome> group(
                outcomes.begin() + 3 * i,
                outcomes.begin() + 3 * (i + 1));
            records.push_back(combineRecords(boundaries[i], group));
            records.back().family = ProbeFamily::RotatedMarginal;
        }
        return records;
    }

    std::size_t hiBoundary() const override { return hi; }

  private:
    LocateConfig cfg;
    circuit::QubitRegister regA;
    const circuit::Circuit &suspect;
    const circuit::Circuit &reference;
    runtime::BatchRunner runner;
    std::size_t hi = 0;

    /** Eager three-frame oracle, built on the first probeAll. */
    std::unique_ptr<PredicateOracle> scanOracle;

    /**
     * Adaptive probes derive their boundary's three-frame predicates
     * lazily (one measurement-resolved pass each) and memoise them —
     * escalation and confirmation rounds at the same boundary reuse
     * the entry. Search-thread only.
     */
    mutable std::map<std::size_t, std::unique_ptr<PredicateOracle>>
        lazyOracles;

    const PredicateOracle &
    oracleAt(std::size_t boundary) const
    {
        auto it = lazyOracles.find(boundary);
        if (it == lazyOracles.end()) {
            const std::vector<std::size_t> one{boundary};
            it = lazyOracles
                     .emplace(boundary,
                              std::make_unique<PredicateOracle>(
                                  reference, regA, cfg.seed, &one,
                                  std::vector<Frame>{
                                      Frame::Z, Frame::X, Frame::Y},
                                  oracleOptionsFor(cfg)))
                     .first;
        }
        return *it->second;
    }

    circuit::Circuit
    buildProbe(std::size_t boundary, Frame frame) const
    {
        circuit::Circuit probe = suspect.sliceRange(0, boundary);
        appendFrameEpilogue(probe, regA.qubits(), frame);
        probe.breakpoint(kProbeLabel);
        return probe;
    }

    static assertions::AssertionSpec
    specFor(const PredicateOracle &oracle, std::size_t boundary,
            Frame frame, double alpha)
    {
        return oracle.specAt(boundary, kProbeLabel, alpha, frame);
    }
};

/**
 * Shared search driver over either probe family. `pruned_lo` is the
 * static pre-pass' certified-equivalent boundary: every boundary up to
 * it provably passes (the suspect and reference prefixes act
 * identically up to global phase, and every probe statistic is
 * phase-invariant), so the search treats it as a confirmed-passing
 * lower bound and never probes at or below it.
 */
LocalizationReport
runSearch(Prober &prober, const LocateConfig &cfg,
          std::size_t pruned_lo = 0)
{
    LocalizationReport report;
    const std::size_t top = prober.hiBoundary();
    // The probeable range can end below the certified boundary (e.g.
    // clamped at the first Measure); the certificate still covers the
    // clamped range.
    pruned_lo = std::min(pruned_lo, top);
    report.prunedBoundaries = pruned_lo;
    QSA_OBS_COUNTER("locate.pruned_boundaries", pruned_lo);

    QSA_OBS_COUNTER("locate.searches", 1);
    QSA_OBS_SPAN(search_span, "locate.search");
    search_span
        .arg("strategy", cfg.strategy == Strategy::LinearScan
                             ? "linear-scan"
                             : "adaptive")
        .arg("boundaries", top)
        .arg("pruned", pruned_lo);

    const assertions::EscalationPolicy explore{
        cfg.ensembleSize, cfg.maxEnsembleSize, cfg.passThreshold};
    const assertions::EscalationPolicy confirm{
        cfg.maxEnsembleSize, cfg.maxEnsembleSize, cfg.passThreshold};

    const auto add = [&](const ProbeRecord &rec) {
        QSA_OBS_COUNTER("locate.probes", 1);
        QSA_OBS_COUNTER("locate.measurements", rec.ensembleSize);
        if (rec.failed)
            QSA_OBS_COUNTER("locate.probe_failures", 1);
        report.probes.push_back(rec);
        report.totalMeasurements += rec.ensembleSize;
        return rec;
    };

    // Every single-boundary probe goes through here so the trace gets
    // one span per probe, annotated with family/boundary/verdict.
    const auto probeOne =
        [&](std::size_t boundary,
            const assertions::EscalationPolicy &policy) {
            QSA_OBS_SPAN(span, "locate.probe");
            const ProbeRecord rec = prober.probe(boundary, policy);
            span.arg("family", probeFamilyName(rec.family))
                .arg("boundary", rec.boundary)
                .arg("verdict", rec.failed ? "fail" : "pass")
                .arg("p_value", rec.pValue)
                .arg("ensemble", rec.ensembleSize);
            return add(rec);
        };

    if (cfg.strategy == Strategy::LinearScan) {
        std::vector<std::size_t> boundaries;
        boundaries.reserve(top - pruned_lo);
        for (std::size_t k = pruned_lo + 1; k <= top; ++k)
            boundaries.push_back(k);
        if (boundaries.empty())
            return report; // whole range certified equivalent
        std::size_t first_failing = 0;
        QSA_OBS_SPAN(scan_span, "locate.scan");
        scan_span.arg("boundaries", boundaries.size());
        for (const auto &rec :
             prober.probeAll(boundaries, cfg.holmBonferroni)) {
            add(rec);
            if (rec.failed && first_failing == 0)
                first_failing = rec.boundary;
        }
        if (first_failing == 0)
            return report; // no boundary rejected: nothing to bracket
        report.bugFound = true;
        report.firstFailing = first_failing;
        report.lastPassing = first_failing - 1;
        return report;
    }

    // Adaptive binary search. Boundary `pruned_lo` (at least the
    // empty prefix, possibly a statically certified-equivalent
    // prefix) passes by construction; the end boundary must fail for
    // there to be anything to localize.
    if (pruned_lo >= top)
        return report; // whole range certified equivalent
    if (!probeOne(top, explore).failed)
        return report;

    std::size_t lo = pruned_lo;
    std::size_t hi = top;
    std::vector<char> passed(top + 1, 0);
    passed[pruned_lo] = 1;
    std::set<std::size_t> failedSet{top};
    // Escalated-ensemble verdicts already delivered (at most one
    // confirmation per boundary, so the outer loop is bounded).
    std::vector<char> confirmedPass(top + 1, 0);
    std::vector<char> confirmedFail(top + 1, 0);
    confirmedPass[pruned_lo] = 1;
    bool located = true;
    while (true) {
        while (hi - lo > 1) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (probeOne(mid, explore).failed) {
                hi = mid;
                failedSet.insert(mid);
            } else {
                lo = mid;
                passed[mid] = 1;
            }
        }
        // Re-adjudicate both sides of the converged bracket on the
        // escalated ensemble: an exploratory pass can be a miss and
        // an exploratory failure a false alarm.
        if (!confirmedPass[lo]) {
            if (probeOne(lo, confirm).failed) {
                // Miss exposed: resume below the demoted boundary.
                passed[lo] = 0;
                failedSet.insert(lo);
                confirmedFail[lo] = 1;
                hi = lo;
                lo = pruned_lo;
                for (std::size_t b = pruned_lo + 1; b < hi; ++b) {
                    if (passed[b])
                        lo = b;
                }
                continue;
            }
            confirmedPass[lo] = 1;
        }
        if (!confirmedFail[hi]) {
            if (!probeOne(hi, confirm).failed) {
                // False alarm exposed: resume above it, at the next
                // boundary still believed failing.
                failedSet.erase(hi);
                passed[hi] = 1;
                confirmedPass[hi] = 1;
                lo = hi;
                const auto next = failedSet.upper_bound(hi);
                if (next == failedSet.end()) {
                    located = false; // nothing failing survives
                    break;
                }
                hi = *next;
                continue;
            }
            confirmedFail[hi] = 1;
        }
        break;
    }
    if (!located)
        return report;

    report.bugFound = true;
    report.lastPassing = lo;
    report.firstFailing = hi;
    return report;
}

/**
 * A run whose probes all passed can still hide a defect in the
 * trailing instructions one program has and the other lacks: every
 * probe compares index-aligned prefixes, so a pure length mismatch is
 * invisible to them. When the probeable range reached the full common
 * length, blame the suffix.
 */
void
resolveTailDivergence(LocalizationReport &report,
                      const circuit::Circuit &suspect,
                      const circuit::Circuit &reference,
                      std::size_t probed_hi)
{
    const std::size_t common =
        std::min(suspect.size(), reference.size());
    if (report.bugFound || suspect.size() == reference.size() ||
        probed_hi != common)
        return;

    report.bugFound = true;
    report.lastPassing = common;
    if (suspect.size() > reference.size()) {
        // The extra trailing instructions are the defect.
        report.firstFailing = suspect.size();
    } else {
        // The suspect ends early; there is no instruction to blame,
        // so the bracket names the one-past-the-end position where
        // the missing code belongs (keeping the firstFailing ==
        // lastPassing + 1 bracket shape).
        report.firstFailing = common + 1;
        report.suspectGates =
            "(program ends " +
            std::to_string(reference.size() - suspect.size()) +
            " instructions before the reference)";
    }
}

/** Render the suspect instruction range into the report. */
void
annotate(LocalizationReport &report, const circuit::Circuit &suspect)
{
    if (!report.bugFound || !report.suspectGates.empty())
        return;
    std::ostringstream os;
    const auto &insts = suspect.instructions();
    for (std::size_t i = report.suspectBegin();
         i < report.suspectEnd() && i < insts.size(); ++i) {
        if (os.tellp() > 0)
            os << "; ";
        const auto &inst = insts[i];
        os << std::string(inst.controls.size(), 'c')
           << circuit::gateKindName(inst.kind);
        os << "(";
        for (std::size_t t = 0; t < inst.targets.size(); ++t)
            os << (t ? "," : "") << inst.targets[t];
        os << ")";
    }
    report.suspectGates = os.str();
}

/**
 * Was the (mirror-family) verdict phase-ambiguous? A found bracket is
 * ambiguous when the deciding probe at firstFailing rejected only
 * through its computational-marginal component (ProbeRecord::
 * phaseAmbiguous); an all-passing run is ambiguous whenever the
 * program has post-measurement segments at all — there the mirror
 * witnesses are computational marginals, which cannot certify the
 * absence of phase divergence.
 */
bool
phaseAmbiguousVerdict(const LocalizationReport &report,
                      bool has_mixture_segments)
{
    if (!report.bugFound)
        return has_mixture_segments;
    for (auto it = report.probes.rbegin(); it != report.probes.rend();
         ++it) {
        if (it->boundary == report.firstFailing && it->failed)
            return it->phaseAmbiguous;
    }
    return false;
}

} // anonymous namespace

std::string
probeFamilyName(ProbeFamily family)
{
    switch (family) {
      case ProbeFamily::SegmentMirror: return "segment-mirror";
      case ProbeFamily::MixtureMarginal: return "mixture-marginal";
      case ProbeFamily::RotatedMarginal: return "rotated-marginal";
      case ProbeFamily::SwapTest: return "swap-test";
      case ProbeFamily::Auto: return "auto";
    }
    panic("unknown probe family");
}

std::string
LocalizationReport::summary() const
{
    std::ostringstream os;
    if (!bugFound) {
        os << "no statistically failing boundary in " << probes.size()
           << " probes (" << totalMeasurements << " measurements)";
        if (prunedBoundaries > 0)
            os << " [" << prunedBoundaries
               << " boundaries statically pruned]";
        if (escalatedToSwapTest)
            os << " [escalated to swap-test probes]";
        return os.str();
    }
    os << "bug bracketed in instructions [" << suspectBegin() << ", "
       << suspectEnd() << ")";
    if (!suspectGates.empty())
        os << " {" << suspectGates << "}";
    os << " after " << probes.size() << " probes ("
       << totalMeasurements << " measurements)";
    if (prunedBoundaries > 0)
        os << " [" << prunedBoundaries
           << " boundaries statically pruned]";
    if (escalatedToSwapTest) {
        os << " [" << probeFamilyName(decidedBy)
           << " witness after escalation]";
    }
    return os.str();
}

BugLocator::BugLocator(const circuit::Circuit &suspect,
                       const circuit::Circuit &reference,
                       const LocateConfig &config)
    : suspect(suspect), reference(reference), config(config)
{
    fatal_if(config.ensembleSize == 0,
             "probe ensemble size must be positive");
    fatal_if(config.maxEnsembleSize < config.ensembleSize,
             "escalation cap below the probe ensemble size");
    fatal_if(config.alpha <= 0.0 || config.alpha >= 1.0,
             "alpha must lie strictly between 0 and 1");
    // passThreshold <= alpha is legal: the inconclusive band is then
    // empty and probes simply never escalate (the pre-knob behaviour
    // for alpha >= 0.30 configs).
    fatal_if(config.passThreshold < 0.0 || config.passThreshold > 1.0,
             "escalation pass threshold ", config.passThreshold,
             " outside [0, 1]");
}

LocalizationReport
BugLocator::locate() const
{
    fatal_if(config.family == ProbeFamily::MixtureMarginal ||
                 config.family == ProbeFamily::RotatedMarginal,
             probeFamilyName(config.family), " probes assert on one "
             "register's marginal; call locateByPredicates(reg) "
             "instead");

    const std::size_t pruned =
        config.staticPruning
            ? analyze::equivalentPrefixBoundary(suspect, reference)
            : 0;

    if (config.family == ProbeFamily::SwapTest) {
        SwapProber prober(suspect, reference, config, nullptr);
        LocalizationReport report = runSearch(prober, config, pruned);
        report.decidedBy = ProbeFamily::SwapTest;
        resolveTailDivergence(report, suspect, reference,
                              prober.hiBoundary());
        annotate(report, suspect);
        return report;
    }

    MirrorProber prober(suspect, reference, config);
    LocalizationReport report = runSearch(prober, config, pruned);
    report.decidedBy = ProbeFamily::SegmentMirror;
    std::size_t probed_hi = prober.hiBoundary();

    if (config.family == ProbeFamily::Auto &&
        phaseAmbiguousVerdict(report, prober.hasMixtureSegments())) {
        // The mirror verdict cannot pin (or rule out) divergence
        // whose only trace is a relative phase: re-adjudicate with
        // the family whose witness is phase-sound and let it decide
        // the bracket. The mirror probes stay in the log — they are
        // the evidence the escalation was warranted. On programs too
        // wide for the two-copy probes the cheap verdict stands as
        // is (an Auto search must not die in a family it can only
        // escalate to).
        if (suspect.numQubits() > kSwapQubitGate) {
            warn("phase-ambiguous mirror verdict, but ",
                 suspect.numQubits(), " qubits exceeds the ",
                 kSwapQubitGate, "-qubit swap-test gate; keeping the "
                 "segment-mirror bracket unescalated");
            resolveTailDivergence(report, suspect, reference,
                                  probed_hi);
            annotate(report, suspect);
            return report;
        }
        try {
            SwapProber swapper(suspect, reference, config, nullptr);
            QSA_OBS_COUNTER("locate.swap_escalations", 1);
            obs::instant("locate.escalate_swap_test");
            LocalizationReport refined =
                runSearch(swapper, config, pruned);
            const bool swap_decides = refined.bugFound;
            LocalizationReport merged =
                swap_decides ? refined : report;
            merged.decidedBy = swap_decides
                                   ? ProbeFamily::SwapTest
                                   : ProbeFamily::SegmentMirror;
            merged.escalatedToSwapTest = true;
            std::vector<ProbeRecord> all = report.probes;
            all.insert(all.end(), refined.probes.begin(),
                       refined.probes.end());
            merged.probes = std::move(all);
            merged.totalMeasurements =
                report.totalMeasurements + refined.totalMeasurements;
            if (swap_decides)
                probed_hi = swapper.hiBoundary();
            report = std::move(merged);
        } catch (const DeriveError &err) {
            // The swap family's purity oracle is exact-only; when it
            // cannot derive (wide-measurement program past the
            // branch cap) the cheap verdict stands.
            warn("swap-test escalation unavailable (", err.what(),
                 "); keeping the segment-mirror bracket");
        }
    }

    resolveTailDivergence(report, suspect, reference, probed_hi);
    annotate(report, suspect);
    return report;
}

LocalizationReport
BugLocator::locateByPredicates(const circuit::QubitRegister &reg) const
{
    const std::size_t pruned =
        config.staticPruning
            ? analyze::equivalentPrefixBoundary(suspect, reference)
            : 0;

    if (config.family == ProbeFamily::RotatedMarginal) {
        RotatedProber prober(suspect, reference, config, reg);
        LocalizationReport report = runSearch(prober, config, pruned);
        report.decidedBy = ProbeFamily::RotatedMarginal;
        resolveTailDivergence(report, suspect, reference,
                              prober.hiBoundary());
        annotate(report, suspect);
        return report;
    }

    if (config.family == ProbeFamily::SwapTest) {
        SwapProber prober(suspect, reference, config, &reg);
        LocalizationReport report = runSearch(prober, config, pruned);
        report.decidedBy = ProbeFamily::SwapTest;
        resolveTailDivergence(report, suspect, reference,
                              prober.hiBoundary());
        annotate(report, suspect);
        return report;
    }

    PredicateProber prober(suspect, reference, config, reg, nullptr);
    LocalizationReport report = runSearch(prober, config, pruned);
    report.decidedBy = ProbeFamily::MixtureMarginal;
    std::size_t probed_hi = prober.hiBoundary();

    if (config.family == ProbeFamily::Auto &&
        suspect.numQubits() > kSwapQubitGate) {
        // An Auto search must not die constructing a family it may
        // never need: past the swap-test gate the marginal verdict
        // stands as is.
        warn("program too wide for swap-test escalation (",
             suspect.numQubits(), " > ", kSwapQubitGate,
             " qubits); keeping the mixture-marginal bracket");
    } else if (config.family == ProbeFamily::Auto) {
        try {
        // A register marginal is a first-*visible* witness, never a
        // defect-site witness: the bracket may sit instructions past
        // the defect (phase divergence transported into the marginal
        // by a later rotation), and an all-passing run cannot rule
        // phase divergence out. One swap-test probe decides whether
        // escalation is warranted: at the marginal bracket's
        // lastPassing boundary when a bracket exists (a failure there
        // proves the divergence predates the visible bracket), at
        // the top boundary otherwise.
        SwapProber swapper(suspect, reference, config, &reg);
        const assertions::EscalationPolicy decisive{
            config.maxEnsembleSize, config.maxEnsembleSize,
            config.passThreshold};
        const std::size_t checkAt =
            report.bugFound ? report.lastPassing
                            : swapper.hiBoundary();
        bool escalate = false;
        if (checkAt > 0) {
            QSA_OBS_SPAN(span, "locate.probe");
            const ProbeRecord check =
                swapper.probe(checkAt, decisive);
            span.arg("family", probeFamilyName(check.family))
                .arg("boundary", check.boundary)
                .arg("verdict", check.failed ? "fail" : "pass")
                .arg("p_value", check.pValue)
                .arg("ensemble", check.ensembleSize);
            QSA_OBS_COUNTER("locate.probes", 1);
            QSA_OBS_COUNTER("locate.measurements",
                            check.ensembleSize);
            if (check.failed)
                QSA_OBS_COUNTER("locate.probe_failures", 1);
            report.probes.push_back(check);
            report.totalMeasurements += check.ensembleSize;
            escalate = check.failed;
        }
        if (escalate) {
            QSA_OBS_COUNTER("locate.swap_escalations", 1);
            obs::instant("locate.escalate_swap_test");
            LocalizationReport refined =
                runSearch(swapper, config, pruned);
            LocalizationReport merged =
                refined.bugFound ? refined : report;
            merged.decidedBy = refined.bugFound
                                   ? ProbeFamily::SwapTest
                                   : ProbeFamily::MixtureMarginal;
            merged.escalatedToSwapTest = true;
            std::vector<ProbeRecord> all = report.probes;
            all.insert(all.end(), refined.probes.begin(),
                       refined.probes.end());
            merged.probes = std::move(all);
            merged.totalMeasurements =
                report.totalMeasurements + refined.totalMeasurements;
            if (refined.bugFound)
                probed_hi = swapper.hiBoundary();
            report = std::move(merged);
        }
        } catch (const DeriveError &err) {
            // The swap family's purity oracle is exact-only; when it
            // cannot derive (wide-measurement program past the
            // branch cap) the marginal verdict stands.
            warn("swap-test escalation unavailable (", err.what(),
                 "); keeping the mixture-marginal bracket");
        }
    }

    resolveTailDivergence(report, suspect, reference, probed_hi);
    annotate(report, suspect);
    return report;
}

LocalizationReport
BugLocator::locateByPredicates(const circuit::QubitRegister &reg_a,
                               const circuit::QubitRegister &reg_b) const
{
    fatal_if(config.family != ProbeFamily::SegmentMirror &&
                 config.family != ProbeFamily::MixtureMarginal,
             "scope-inherited two-register probes support "
             "ProbeFamily::MixtureMarginal only (got ",
             probeFamilyName(config.family), ")");
    const std::size_t pruned =
        config.staticPruning
            ? analyze::equivalentPrefixBoundary(suspect, reference)
            : 0;
    PredicateProber prober(suspect, reference, config, reg_a, &reg_b);
    LocalizationReport report = runSearch(prober, config, pruned);
    report.decidedBy = ProbeFamily::MixtureMarginal;
    resolveTailDivergence(report, suspect, reference,
                          prober.hiBoundary());
    annotate(report, suspect);
    return report;
}

} // namespace qsa::locate
