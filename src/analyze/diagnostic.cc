/**
 * @file
 * Diagnostic rendering (text and JSON).
 */

#include "analyze/diagnostic.hh"

#include <sstream>

#include "common/benchjson.hh"
#include "common/logging.hh"

namespace qsa::analyze
{

std::string
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    panic("unknown severity");
}

std::size_t
LintReport::count(Severity severity) const
{
    std::size_t total = 0;
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == severity)
            ++total;
    }
    return total;
}

std::string
LintReport::render() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diagnostics) {
        os << severityName(d.severity) << " [" << d.rule << "] at #"
           << d.instruction;
        if (!d.qubits.empty()) {
            os << " q{";
            for (std::size_t i = 0; i < d.qubits.size(); ++i)
                os << (i ? "," : "") << d.qubits[i];
            os << "}";
        }
        if (!d.label.empty())
            os << " '" << d.label << "'";
        os << ": " << d.message << "\n";
        if (!d.hint.empty())
            os << "    hint: " << d.hint << "\n";
    }
    os << diagnostics.size() << " finding(s): "
       << count(Severity::Error) << " error(s), "
       << count(Severity::Warning) << " warning(s), "
       << count(Severity::Info) << " info\n";
    return os.str();
}

std::string
LintReport::json() const
{
    namespace bj = benchjson;
    std::ostringstream os;
    os << "{\"diagnostics\": [";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &d = diagnostics[i];
        os << (i ? ",\n" : "\n") << "  {\"rule\": \""
           << bj::escape(d.rule) << "\", \"severity\": \""
           << severityName(d.severity)
           << "\", \"instruction\": " << d.instruction
           << ", \"qubits\": [";
        for (std::size_t q = 0; q < d.qubits.size(); ++q)
            os << (q ? ", " : "") << d.qubits[q];
        os << "], \"label\": \"" << bj::escape(d.label)
           << "\", \"message\": \"" << bj::escape(d.message)
           << "\", \"hint\": \"" << bj::escape(d.hint) << "\"}";
    }
    os << (diagnostics.empty() ? "]" : "\n]")
       << ", \"errors\": " << count(Severity::Error)
       << ", \"warnings\": " << count(Severity::Warning)
       << ", \"infos\": " << count(Severity::Info) << "}\n";
    return os.str();
}

} // namespace qsa::analyze
