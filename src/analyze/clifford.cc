/**
 * @file
 * Clifford abstract interpretation: CHP tableau, static predicates,
 * and the boundary-equivalence pre-pass.
 */

#include "analyze/clifford.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/artifacts.hh"
#include "common/bits.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace qsa::analyze
{

namespace
{

/** Tolerance (in units of pi/2) for snapping angles to quarter turns. */
constexpr double kQuarterTol = 1e-9;

/** Tolerance for structural angle/matrix comparisons. */
constexpr double kExactTol = 1e-12;

/**
 * Classify `angle` as k quarter turns (k in 0..3) when it is an
 * exact multiple of pi/2 modulo 2*pi; nullopt otherwise.
 */
std::optional<int>
quarterTurns(double angle)
{
    const double turns = angle / (M_PI / 2.0);
    const double rounded = std::round(turns);
    if (std::abs(turns - rounded) > kQuarterTol)
        return std::nullopt;
    const long long k = std::llround(std::fmod(rounded, 4.0));
    return static_cast<int>((k % 4 + 4) % 4);
}

/** Append `op` for every quarter turn of a diagonal phase. */
void
appendQuarterPhase(std::vector<CliffordOp> &ops, int k, std::size_t q)
{
    using K = CliffordOp::Kind;
    switch (k) {
      case 0: break;
      case 1: ops.push_back({K::S, q, 0}); break;
      case 2: ops.push_back({K::Z, q, 0}); break;
      case 3: ops.push_back({K::Sdg, q, 0}); break;
      default: panic("quarter turn out of range");
    }
}

} // anonymous namespace

// --- StabilizerTableau -----------------------------------------------------

StabilizerTableau::StabilizerTableau(std::size_t num_qubits)
    : n(num_qubits), words((num_qubits + 63) / 64),
      xbits((2 * num_qubits + 1) * words, 0),
      zbits((2 * num_qubits + 1) * words, 0),
      signs(2 * num_qubits + 1, false)
{
    fatal_if(n == 0, "stabilizer tableau needs at least one qubit");
    for (std::size_t q = 0; q < n; ++q) {
        setx(q, q, true);     // destabilizer X_q
        setz(n + q, q, true); // stabilizer Z_q
    }
}

bool
StabilizerTableau::xb(std::size_t row, std::size_t col) const
{
    return (xbits[row * words + col / 64] >> (col % 64)) & 1;
}

bool
StabilizerTableau::zb(std::size_t row, std::size_t col) const
{
    return (zbits[row * words + col / 64] >> (col % 64)) & 1;
}

void
StabilizerTableau::setx(std::size_t row, std::size_t col, bool v)
{
    const std::uint64_t mask = std::uint64_t(1) << (col % 64);
    if (v)
        xbits[row * words + col / 64] |= mask;
    else
        xbits[row * words + col / 64] &= ~mask;
}

void
StabilizerTableau::setz(std::size_t row, std::size_t col, bool v)
{
    const std::uint64_t mask = std::uint64_t(1) << (col % 64);
    if (v)
        zbits[row * words + col / 64] |= mask;
    else
        zbits[row * words + col / 64] &= ~mask;
}

void
StabilizerTableau::rowcopy(std::size_t dst, std::size_t src)
{
    for (std::size_t w = 0; w < words; ++w) {
        xbits[dst * words + w] = xbits[src * words + w];
        zbits[dst * words + w] = zbits[src * words + w];
    }
    signs[dst] = signs[src];
}

void
StabilizerTableau::rowclear(std::size_t row)
{
    for (std::size_t w = 0; w < words; ++w) {
        xbits[row * words + w] = 0;
        zbits[row * words + w] = 0;
    }
    signs[row] = false;
}

void
StabilizerTableau::rowsum(std::size_t h, std::size_t i)
{
    // CHP phase bookkeeping: row h := row i * row h with the exponent
    // of the imaginary unit accumulated mod 4 (always 0 or 2 for
    // Hermitian products).
    int phase = 2 * (signs[h] ? 1 : 0) + 2 * (signs[i] ? 1 : 0);
    for (std::size_t j = 0; j < n; ++j) {
        const int x1 = xb(i, j), z1 = zb(i, j);
        const int x2 = xb(h, j), z2 = zb(h, j);
        if (x1 == 0 && z1 == 0)
            continue;
        if (x1 == 1 && z1 == 1)
            phase += z2 - x2;
        else if (x1 == 1)
            phase += z2 * (2 * x2 - 1);
        else
            phase += x2 * (1 - 2 * z2);
    }
    phase = ((phase % 4) + 4) % 4;
    // Only stabilizer rows must stay Hermitian: the measurement
    // update also folds the pivot into destabilizer rows, and the
    // pivot's own destabilizer partner *anticommutes* with it, so the
    // product legitimately picks up a factor of +/-i there.
    // Destabilizer signs are never read, so the parity is irrelevant.
    panic_if(h >= n && phase != 0 && phase != 2,
             "rowsum produced a non-Hermitian stabilizer");
    signs[h] = (phase == 2);
    for (std::size_t w = 0; w < words; ++w) {
        xbits[h * words + w] ^= xbits[i * words + w];
        zbits[h * words + w] ^= zbits[i * words + w];
    }
}

void
StabilizerTableau::h(std::size_t q)
{
    for (std::size_t row = 0; row < 2 * n; ++row) {
        const bool x = xb(row, q), z = zb(row, q);
        if (x && z)
            signs[row] = !signs[row];
        setx(row, q, z);
        setz(row, q, x);
    }
}

void
StabilizerTableau::s(std::size_t q)
{
    for (std::size_t row = 0; row < 2 * n; ++row) {
        const bool x = xb(row, q), z = zb(row, q);
        if (x && z)
            signs[row] = !signs[row];
        setz(row, q, z ^ x);
    }
}

void
StabilizerTableau::sdg(std::size_t q)
{
    s(q);
    s(q);
    s(q);
}

void
StabilizerTableau::x(std::size_t q)
{
    for (std::size_t row = 0; row < 2 * n; ++row) {
        if (zb(row, q))
            signs[row] = !signs[row];
    }
}

void
StabilizerTableau::y(std::size_t q)
{
    for (std::size_t row = 0; row < 2 * n; ++row) {
        if (xb(row, q) != zb(row, q))
            signs[row] = !signs[row];
    }
}

void
StabilizerTableau::z(std::size_t q)
{
    for (std::size_t row = 0; row < 2 * n; ++row) {
        if (xb(row, q))
            signs[row] = !signs[row];
    }
}

void
StabilizerTableau::cnot(std::size_t c, std::size_t t)
{
    for (std::size_t row = 0; row < 2 * n; ++row) {
        const bool xc = xb(row, c), zc = zb(row, c);
        const bool xt = xb(row, t), zt = zb(row, t);
        if (xc && zt && (xt == zc))
            signs[row] = !signs[row];
        setx(row, t, xt ^ xc);
        setz(row, c, zc ^ zt);
    }
}

void
StabilizerTableau::cz(std::size_t c, std::size_t t)
{
    h(t);
    cnot(c, t);
    h(t);
}

void
StabilizerTableau::swap(std::size_t a, std::size_t b)
{
    cnot(a, b);
    cnot(b, a);
    cnot(a, b);
}

bool
StabilizerTableau::measureIsDeterministic(std::size_t q) const
{
    for (std::size_t row = n; row < 2 * n; ++row) {
        if (xb(row, q))
            return false;
    }
    return true;
}

bool
StabilizerTableau::deterministicValue(std::size_t q) const
{
    panic_if(!measureIsDeterministic(q),
             "measurement outcome is not deterministic");

    // Accumulate the product of the stabilizer rows whose
    // destabilizer partners anticommute with Z_q; its sign is the
    // outcome. Local accumulator so the method stays const.
    std::vector<std::uint64_t> ax(words, 0), az(words, 0);
    int phase = 0;
    const auto bit = [&](const std::vector<std::uint64_t> &v,
                         std::size_t col) -> int {
        return (v[col / 64] >> (col % 64)) & 1;
    };
    for (std::size_t i = 0; i < n; ++i) {
        if (!xb(i, q))
            continue;
        const std::size_t row = n + i;
        phase += 2 * (signs[row] ? 1 : 0);
        for (std::size_t j = 0; j < n; ++j) {
            const int x1 = xb(row, j), z1 = zb(row, j);
            const int x2 = bit(ax, j), z2 = bit(az, j);
            if (x1 == 0 && z1 == 0)
                continue;
            if (x1 == 1 && z1 == 1)
                phase += z2 - x2;
            else if (x1 == 1)
                phase += z2 * (2 * x2 - 1);
            else
                phase += x2 * (1 - 2 * z2);
        }
        for (std::size_t w = 0; w < words; ++w) {
            ax[w] ^= xbits[row * words + w];
            az[w] ^= zbits[row * words + w];
        }
    }
    phase = ((phase % 4) + 4) % 4;
    panic_if(phase != 0 && phase != 2,
             "deterministic outcome accumulator went non-Hermitian");
    return phase == 2;
}

bool
StabilizerTableau::forceMeasure(std::size_t q, bool outcome)
{
    std::size_t p = 2 * n + 1;
    for (std::size_t row = n; row < 2 * n; ++row) {
        if (xb(row, q)) {
            p = row;
            break;
        }
    }
    if (p == 2 * n + 1)
        return deterministicValue(q);

    // Random outcome: project onto the chosen branch. The algebraic
    // update is outcome-independent; only the new stabilizer's sign
    // records the choice.
    for (std::size_t row = 0; row < 2 * n; ++row) {
        if (row != p && xb(row, q))
            rowsum(row, p);
    }
    rowcopy(p - n, p);
    rowclear(p);
    setz(p, q, true);
    signs[p] = outcome;
    return outcome;
}

bool
StabilizerTableau::qubitIsUnentangled(std::size_t q) const
{
    // The qubit factors out iff the stabilizer group projects onto a
    // rank-<=1 local Pauli group at q: at most one distinct nonzero
    // (x, z) pair among the stabilizer rows.
    int seen_x = -1, seen_z = -1;
    for (std::size_t row = n; row < 2 * n; ++row) {
        const int x = xb(row, q), z = zb(row, q);
        if (x == 0 && z == 0)
            continue;
        if (seen_x < 0) {
            seen_x = x;
            seen_z = z;
        } else if (x != seen_x || z != seen_z) {
            return false;
        }
    }
    return true;
}

// --- cliffordDecompose -----------------------------------------------------

std::optional<std::vector<CliffordOp>>
cliffordDecompose(const circuit::Instruction &inst)
{
    using K = CliffordOp::Kind;
    using circuit::GateKind;
    std::vector<CliffordOp> ops;

    if (inst.kind == GateKind::Breakpoint)
        return ops; // identity

    if (inst.kind == GateKind::PrepZ ||
        inst.kind == GateKind::Measure ||
        inst.kind == GateKind::Unitary)
        return std::nullopt;

    if (inst.controls.size() >= 2)
        return std::nullopt;

    if (inst.controls.empty()) {
        const std::size_t q = inst.targets.empty() ? 0 : inst.targets[0];
        switch (inst.kind) {
          case GateKind::H: ops.push_back({K::H, q, 0}); return ops;
          case GateKind::X: ops.push_back({K::X, q, 0}); return ops;
          case GateKind::Y: ops.push_back({K::Y, q, 0}); return ops;
          case GateKind::Z: ops.push_back({K::Z, q, 0}); return ops;
          case GateKind::S: ops.push_back({K::S, q, 0}); return ops;
          case GateKind::Sdg:
            ops.push_back({K::Sdg, q, 0});
            return ops;
          case GateKind::Swap:
            ops.push_back({K::Swap, inst.targets[0],
                           inst.targets[1]});
            return ops;
          case GateKind::Phase:
          case GateKind::Rz: {
            const auto k = quarterTurns(inst.angle);
            if (!k)
                return std::nullopt;
            appendQuarterPhase(ops, *k, q);
            return ops;
          }
          case GateKind::Rx: {
            const auto k = quarterTurns(inst.angle);
            if (!k)
                return std::nullopt;
            if (*k == 0)
                return ops;
            ops.push_back({K::H, q, 0});
            appendQuarterPhase(ops, *k, q);
            ops.push_back({K::H, q, 0});
            return ops;
          }
          case GateKind::Ry: {
            const auto k = quarterTurns(inst.angle);
            if (!k)
                return std::nullopt;
            if (*k == 0)
                return ops;
            // Ry = S Rx Sdg as matrices: circuit order Sdg, Rx, S.
            ops.push_back({K::Sdg, q, 0});
            ops.push_back({K::H, q, 0});
            appendQuarterPhase(ops, *k, q);
            ops.push_back({K::H, q, 0});
            ops.push_back({K::S, q, 0});
            return ops;
          }
          default:
            return std::nullopt; // T, Tdg, ...
        }
    }

    // Exactly one control: only exact Clifford identities qualify —
    // controlled forms that differ by a control-dependent global
    // phase (e.g. CRz(pi/2), CS) are NOT Clifford and are rejected.
    const std::size_t c = inst.controls[0];
    const std::size_t t = inst.targets.empty() ? 0 : inst.targets[0];
    switch (inst.kind) {
      case GateKind::X:
        ops.push_back({K::Cnot, c, t});
        return ops;
      case GateKind::Z:
        ops.push_back({K::Cz, c, t});
        return ops;
      case GateKind::Y:
        // CY = (I (x) S) CNOT (I (x) Sdg), exactly.
        ops.push_back({K::Sdg, t, 0});
        ops.push_back({K::Cnot, c, t});
        ops.push_back({K::S, t, 0});
        return ops;
      case GateKind::Phase: {
        const auto k = quarterTurns(inst.angle);
        if (!k)
            return std::nullopt;
        if (*k == 0)
            return ops;
        if (*k == 2) { // controlled diag(1,-1) is exactly CZ
            ops.push_back({K::Cz, c, t});
            return ops;
        }
        return std::nullopt;
      }
      case GateKind::Rz: {
        const auto k = quarterTurns(inst.angle);
        if (!k)
            return std::nullopt;
        if (*k == 0)
            return ops;
        if (*k == 2) { // CRz(pi) = Sdg(control) . CZ, exactly
            ops.push_back({K::Cz, c, t});
            ops.push_back({K::Sdg, c, 0});
            return ops;
        }
        return std::nullopt;
      }
      case GateKind::Rx: {
        const auto k = quarterTurns(inst.angle);
        if (!k)
            return std::nullopt;
        if (*k == 0)
            return ops;
        if (*k == 2) { // CRx(pi) = Sdg(control) . CNOT, exactly
            ops.push_back({K::Cnot, c, t});
            ops.push_back({K::Sdg, c, 0});
            return ops;
        }
        return std::nullopt;
      }
      case GateKind::Ry: {
        const auto k = quarterTurns(inst.angle);
        if (!k)
            return std::nullopt;
        if (*k == 0)
            return ops;
        if (*k == 2) { // CRy(pi) = Sdg(control) . CY, exactly
            ops.push_back({K::Sdg, t, 0});
            ops.push_back({K::Cnot, c, t});
            ops.push_back({K::S, t, 0});
            ops.push_back({K::Sdg, c, 0});
            return ops;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt; // controlled H/S/Swap/...
    }
}

void
applyCliffordOps(StabilizerTableau &tab,
                 const std::vector<CliffordOp> &ops)
{
    using K = CliffordOp::Kind;
    for (const CliffordOp &op : ops) {
        switch (op.kind) {
          case K::H: tab.h(op.a); break;
          case K::S: tab.s(op.a); break;
          case K::Sdg: tab.sdg(op.a); break;
          case K::X: tab.x(op.a); break;
          case K::Y: tab.y(op.a); break;
          case K::Z: tab.z(op.a); break;
          case K::Cnot: tab.cnot(op.a, op.b); break;
          case K::Cz: tab.cz(op.a, op.b); break;
          case K::Swap: tab.swap(op.a, op.b); break;
        }
    }
}

// --- CliffordSimulation ----------------------------------------------------

CliffordSimulation::CliffordSimulation(const circuit::Circuit &circ)
{
    QSA_OBS_SPAN(span, "analyze.clifford");
    total = circ.size() + 1;
    StabilizerTableau tab(circ.numQubits());
    tableaus.push_back(tab);
    decidable = 0;

    const auto &insts = circ.instructions();
    for (std::size_t k = 0; k < insts.size(); ++k) {
        const circuit::Instruction &inst = insts[k];
        const auto top = [&](const std::string &why) {
            reason = "instruction " + std::to_string(k) + " (" +
                     circuit::gateKindName(inst.kind) + "): " + why;
        };

        bool fires = true;
        if (!inst.condLabel.empty()) {
            const auto it = recorded.find(inst.condLabel);
            if (it == recorded.end()) {
                top("condition reads label '" + inst.condLabel +
                    "' with no statically known value");
                break;
            }
            fires = (it->second == inst.condValue);
        }

        if (!fires) {
            // Statically dead conditional: exact no-op.
        } else if (inst.kind == circuit::GateKind::PrepZ) {
            const std::size_t q = inst.targets[0];
            if (tab.measureIsDeterministic(q)) {
                const bool value = tab.deterministicValue(q);
                if (value != (inst.bit & 1))
                    tab.x(q);
            } else if (tab.qubitIsUnentangled(q)) {
                // Measuring a product qubit leaves the rest factor
                // untouched in every branch; force the prepared value.
                tab.forceMeasure(q, inst.bit & 1);
            } else {
                top("reset of an entangled qubit leaves a data-"
                    "dependent mixture");
                break;
            }
        } else if (inst.kind == circuit::GateKind::Measure) {
            std::uint64_t value = 0;
            bool ok = true;
            for (std::size_t i = 0; i < inst.targets.size(); ++i) {
                if (!tab.measureIsDeterministic(inst.targets[i])) {
                    top("nondeterministic measurement outcome "
                        "branches the state");
                    ok = false;
                    break;
                }
                value |= std::uint64_t(
                             tab.deterministicValue(inst.targets[i]))
                         << i;
            }
            if (!ok)
                break;
            recorded[inst.label] = value;
        } else {
            const auto ops = cliffordDecompose(inst);
            if (!ops) {
                top("outside the Clifford fragment");
                break;
            }
            applyCliffordOps(tab, *ops);
        }

        tableaus.push_back(tab);
        decidable = k + 1;
    }
    QSA_OBS_COUNTER("analyze.clifford.boundaries", decidable + 1);
    span.arg("boundaries", total).arg("decidable", decidable);
}

const StabilizerTableau &
CliffordSimulation::tableauAt(std::size_t b) const
{
    fatal_if(!decidableAt(b), "boundary ", b,
             " is past the decidable Clifford prefix (", decidable,
             ")", reason.empty() ? "" : ": " + reason);
    return tableaus[b];
}

locate::BoundaryPredicate
CliffordSimulation::predicateAt(std::size_t b,
                                const circuit::QubitRegister &reg) const
{
    fatal_if(!decidableAt(b), "boundary ", b,
             " is past the decidable Clifford prefix (", decidable,
             ")", reason.empty() ? "" : ": " + reason);
    fatal_if(reg.width() == 0,
             "static predicate needs a non-empty register");
    fatal_if(reg.width() > 24,
             "register too wide for dense static predicates");

    const std::vector<unsigned> qubits = reg.qubits();
    const std::size_t width = qubits.size();

    // Force-measure the register sequentially on a tableau copy.
    // Which positions come out random is outcome-independent, so one
    // all-zeros pass finds the base point and the free set, and one
    // extra pass per free position recovers the affine generators.
    const auto run = [&](std::uint64_t forced,
                         std::vector<bool> *free_out) -> std::uint64_t {
        StabilizerTableau t = tableaus[b];
        std::uint64_t v = 0;
        for (std::size_t k = 0; k < width; ++k) {
            bool bit;
            if (t.measureIsDeterministic(qubits[k])) {
                bit = t.deterministicValue(qubits[k]);
                if (free_out)
                    (*free_out)[k] = false;
            } else {
                bit = (forced >> k) & 1;
                t.forceMeasure(qubits[k], bit);
                if (free_out)
                    (*free_out)[k] = true;
            }
            v |= std::uint64_t(bit) << k;
        }
        return v;
    };

    std::vector<bool> is_free(width, false);
    const std::uint64_t v0 = run(0, &is_free);
    std::vector<std::size_t> free_positions;
    for (std::size_t k = 0; k < width; ++k) {
        if (is_free[k])
            free_positions.push_back(k);
    }

    locate::BoundaryPredicate pred;
    if (free_positions.empty()) {
        pred.kind = assertions::AssertionKind::Classical;
        pred.expectedValue = v0;
        return pred;
    }
    if (free_positions.size() == width) {
        // The generators are triangular over the free positions, so
        // a fully free register spans the whole domain uniformly.
        pred.kind = assertions::AssertionKind::Superposition;
        return pred;
    }

    std::vector<std::uint64_t> gens;
    for (std::size_t f : free_positions)
        gens.push_back(run(std::uint64_t(1) << f, nullptr) ^ v0);

    pred.kind = assertions::AssertionKind::Distribution;
    pred.expectedProbs.assign(pow2(width), 0.0);
    const double p = 1.0 / static_cast<double>(pow2(gens.size()));
    for (std::uint64_t combo = 0; combo < pow2(gens.size()); ++combo) {
        std::uint64_t v = v0;
        for (std::size_t g = 0; g < gens.size(); ++g) {
            if ((combo >> g) & 1)
                v ^= gens[g];
        }
        pred.expectedProbs[v] = p;
    }
    return pred;
}

// --- CliffordUnitary -------------------------------------------------------

CliffordUnitary::CliffordUnitary(std::size_t num_qubits)
    : n(num_qubits), xbits(), zbits(), signs(2 * num_qubits, false),
      words((num_qubits + 63) / 64)
{
    fatal_if(n == 0, "clifford unitary needs at least one qubit");
    xbits.assign(2 * n * words, 0);
    zbits.assign(2 * n * words, 0);
    for (std::size_t q = 0; q < n; ++q) {
        xbits[q * words + q / 64] |= std::uint64_t(1) << (q % 64);
        zbits[(n + q) * words + q / 64] |= std::uint64_t(1)
                                           << (q % 64);
    }
}

void
CliffordUnitary::rowop(std::size_t row, const CliffordOp &op)
{
    using K = CliffordOp::Kind;
    const auto getx = [&](std::size_t col) -> bool {
        return (xbits[row * words + col / 64] >> (col % 64)) & 1;
    };
    const auto getz = [&](std::size_t col) -> bool {
        return (zbits[row * words + col / 64] >> (col % 64)) & 1;
    };
    const auto putx = [&](std::size_t col, bool v) {
        const std::uint64_t mask = std::uint64_t(1) << (col % 64);
        if (v)
            xbits[row * words + col / 64] |= mask;
        else
            xbits[row * words + col / 64] &= ~mask;
    };
    const auto putz = [&](std::size_t col, bool v) {
        const std::uint64_t mask = std::uint64_t(1) << (col % 64);
        if (v)
            zbits[row * words + col / 64] |= mask;
        else
            zbits[row * words + col / 64] &= ~mask;
    };

    switch (op.kind) {
      case K::H: {
        const bool x = getx(op.a), z = getz(op.a);
        if (x && z)
            signs[row] = !signs[row];
        putx(op.a, z);
        putz(op.a, x);
        break;
      }
      case K::S: {
        const bool x = getx(op.a), z = getz(op.a);
        if (x && z)
            signs[row] = !signs[row];
        putz(op.a, z ^ x);
        break;
      }
      case K::Sdg:
        rowop(row, {K::S, op.a, 0});
        rowop(row, {K::S, op.a, 0});
        rowop(row, {K::S, op.a, 0});
        break;
      case K::X:
        if (getz(op.a))
            signs[row] = !signs[row];
        break;
      case K::Y:
        if (getx(op.a) != getz(op.a))
            signs[row] = !signs[row];
        break;
      case K::Z:
        if (getx(op.a))
            signs[row] = !signs[row];
        break;
      case K::Cnot: {
        const bool xc = getx(op.a), zc = getz(op.a);
        const bool xt = getx(op.b), zt = getz(op.b);
        if (xc && zt && (xt == zc))
            signs[row] = !signs[row];
        putx(op.b, xt ^ xc);
        putz(op.a, zc ^ zt);
        break;
      }
      case K::Cz:
        rowop(row, {K::H, op.b, 0});
        rowop(row, {K::Cnot, op.a, op.b});
        rowop(row, {K::H, op.b, 0});
        break;
      case K::Swap:
        rowop(row, {K::Cnot, op.a, op.b});
        rowop(row, {K::Cnot, op.b, op.a});
        rowop(row, {K::Cnot, op.a, op.b});
        break;
    }
}

void
CliffordUnitary::apply(const CliffordOp &op)
{
    for (std::size_t row = 0; row < 2 * n; ++row)
        rowop(row, op);
}

void
CliffordUnitary::apply(const std::vector<CliffordOp> &ops)
{
    for (const CliffordOp &op : ops)
        apply(op);
}

bool
CliffordUnitary::operator==(const CliffordUnitary &other) const
{
    return n == other.n && xbits == other.xbits &&
           zbits == other.zbits && signs == other.signs;
}

// --- equivalentPrefixBoundary ----------------------------------------------

namespace
{

/** Sorted copy of a qubit list. */
std::vector<unsigned>
sortedQubits(std::vector<unsigned> qubits)
{
    std::sort(qubits.begin(), qubits.end());
    return qubits;
}

/** True for kinds whose operand order is irrelevant (fully symmetric
 *  diagonal gates: Z / Phase with any controls). */
bool
symmetricOperands(const circuit::Instruction &inst)
{
    return inst.kind == circuit::GateKind::Z ||
           inst.kind == circuit::GateKind::Phase;
}

/** Union of controls and targets, sorted. */
std::vector<unsigned>
operandUnion(const circuit::Instruction &inst)
{
    std::vector<unsigned> all = inst.controls;
    all.insert(all.end(), inst.targets.begin(), inst.targets.end());
    std::sort(all.begin(), all.end());
    return all;
}

/** Structural instruction equality modulo canonical operand order. */
bool
structurallyEqual(const circuit::Circuit &sc,
                  const circuit::Instruction &a,
                  const circuit::Circuit &rc,
                  const circuit::Instruction &b)
{
    using circuit::GateKind;
    if (a.kind != b.kind)
        return false;
    if (a.condLabel != b.condLabel)
        return false;
    if (!a.condLabel.empty() && a.condValue != b.condValue)
        return false;
    if (circuit::gateKindHasAngle(a.kind) &&
        std::abs(a.angle - b.angle) > kExactTol)
        return false;

    switch (a.kind) {
      case GateKind::PrepZ:
        return a.targets == b.targets && (a.bit & 1) == (b.bit & 1);
      case GateKind::Measure:
        // Target order packs the label's bits; it must match exactly.
        return a.targets == b.targets && a.label == b.label;
      case GateKind::Breakpoint:
        return a.label == b.label;
      case GateKind::Unitary:
        return a.targets == b.targets &&
               sortedQubits(a.controls) == sortedQubits(b.controls) &&
               sc.matrix(a.matrixId).distance(rc.matrix(b.matrixId)) <=
                   kExactTol;
      case GateKind::Swap:
        return sortedQubits(a.targets) == sortedQubits(b.targets) &&
               sortedQubits(a.controls) == sortedQubits(b.controls);
      default:
        if (symmetricOperands(a))
            return operandUnion(a) == operandUnion(b);
        return a.targets == b.targets &&
               sortedQubits(a.controls) == sortedQubits(b.controls);
    }
}

/** True when `inst` can join an unconditioned Clifford run. */
bool
joinsCliffordRun(const circuit::Instruction &inst,
                 std::vector<CliffordOp> &ops)
{
    if (!inst.condLabel.empty())
        return false;
    if (inst.kind == circuit::GateKind::Breakpoint)
        return false; // an observation point is a barrier
    const auto decomposed = cliffordDecompose(inst);
    if (!decomposed)
        return false;
    ops.insert(ops.end(), decomposed->begin(), decomposed->end());
    return true;
}

} // anonymous namespace

namespace
{

/**
 * Certificate-store key for one (suspect, reference) pair. Both
 * content hashes go into the key, so any edit to either program
 * invalidates the cached boundary.
 */
std::string
prefixCertKey(const circuit::Circuit &suspect,
              const circuit::Circuit &reference)
{
    std::ostringstream os;
    os << "v1:" << std::hex << suspect.contentHash() << ":"
       << reference.contentHash();
    return os.str();
}

bool
restorePrefixCert(const std::string &payload, std::size_t *boundary)
{
    json::Value doc;
    if (!json::Value::parse(payload, &doc))
        return false;
    try {
        if (doc.find("v") == nullptr ||
            doc.find("v")->asUint64() != 1 ||
            doc.find("boundary") == nullptr)
            return false;
        *boundary = doc.find("boundary")->asUint64();
        return true;
    } catch (const json::TypeError &) {
        return false;
    }
}

} // anonymous namespace

std::size_t
equivalentPrefixBoundary(const circuit::Circuit &suspect,
                         const circuit::Circuit &reference)
{
    QSA_OBS_SPAN(span, "analyze.equiv");
    if (suspect.numQubits() != reference.numQubits()) {
        span.arg("boundary", 0);
        return 0;
    }

    // The tableau sweep is pure in the two programs, so a persisted
    // certificate (when a store is installed) stands in for the whole
    // computation.
    common::ArtifactStore *store = common::artifactStore();
    std::string key;
    if (store != nullptr) {
        key = prefixCertKey(suspect, reference);
        std::string payload;
        std::size_t cached = 0;
        if (store->load("prefix_cert", key, &payload) &&
            restorePrefixCert(payload, &cached)) {
            QSA_OBS_COUNTER("analyze.equiv.certified_boundaries",
                            cached);
            span.arg("boundary", cached);
            return cached;
        }
    }

    const auto &si = suspect.instructions();
    const auto &ri = reference.instructions();
    const std::size_t limit = std::min(si.size(), ri.size());

    std::size_t i = 0;
    std::size_t certified = 0;
    while (i < limit) {
        if (structurallyEqual(suspect, si[i], reference, ri[i])) {
            ++i;
            certified = i;
            continue;
        }

        // Structural mismatch: try to match equal-length Clifford
        // runs by their conjugation tableaux (catches commuting
        // reorderings and re-expressed gate identities).
        std::vector<CliffordOp> sops, rops;
        std::size_t js = i, jr = i;
        while (js < si.size() && joinsCliffordRun(si[js], sops))
            ++js;
        while (jr < ri.size() && joinsCliffordRun(ri[jr], rops))
            ++jr;
        if (js == jr && js > i) {
            CliffordUnitary us(suspect.numQubits());
            CliffordUnitary ur(reference.numQubits());
            us.apply(sops);
            ur.apply(rops);
            if (us == ur) {
                i = js;
                certified = js;
                continue;
            }
        }
        break;
    }

    if (store != nullptr) {
        json::Value doc = json::Value::object();
        doc.set("v", json::Value::integer(1));
        doc.set("boundary", json::Value::integer(certified));
        store->store("prefix_cert", key, doc.dump());
    }

    QSA_OBS_COUNTER("analyze.equiv.certified_boundaries", certified);
    span.arg("boundary", certified);
    return certified;
}

} // namespace qsa::analyze
