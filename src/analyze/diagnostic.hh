/**
 * @file
 * Structured lint diagnostics.
 *
 * Every analysis pass reports findings as `Diagnostic` records — a
 * stable rule id, a severity, the offending instruction index, the
 * qubits and classical labels involved, and a fix hint — so tools
 * (the `qsa_lint` CLI, `Session::analyze()`, CI gates) can consume
 * the results structurally instead of scraping text. The rule ids
 * follow the defect idioms catalogued by Zhao et al.'s *Identifying
 * Bug Patterns in Quantum Programs* (PAPERS.md): most of the
 * taxonomy the paper finds dynamically is decidable from the IR.
 */

#ifndef QSA_ANALYZE_DIAGNOSTIC_HH
#define QSA_ANALYZE_DIAGNOSTIC_HH

#include <cstddef>
#include <string>
#include <vector>

namespace qsa::analyze
{

/** How bad a finding is. */
enum class Severity
{
    /** Style/no-op findings: the program is correct but wasteful. */
    Info,

    /** Probable defects: legal IR whose semantics are almost
     *  certainly not what the author intended. */
    Warning,

    /** Guaranteed runtime failures (the executor aborts). */
    Error,
};

/** Lower-case severity name ("info" / "warning" / "error"). */
std::string severityName(Severity severity);

/** One lint finding. */
struct Diagnostic
{
    /** Stable rule id, e.g. "cond-unwritten-label". */
    std::string rule;

    Severity severity = Severity::Warning;

    /** Index of the offending instruction in the linted circuit. */
    std::size_t instruction = 0;

    /** Qubits involved in the finding (may be empty). */
    std::vector<unsigned> qubits;

    /** Classical measurement label involved (may be empty). */
    std::string label;

    /** What is wrong. */
    std::string message;

    /** How to fix it. */
    std::string hint;
};

/** The result of running the lint pass registry over one circuit. */
struct LintReport
{
    std::vector<Diagnostic> diagnostics;

    /** No findings at any severity. */
    bool clean() const { return diagnostics.empty(); }

    /** Number of findings at exactly `severity`. */
    std::size_t count(Severity severity) const;

    /** True when at least one Error-severity finding exists. */
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** Human-readable rendering, one line per diagnostic. */
    std::string render() const;

    /** Structured JSON rendering (an object with a "diagnostics"
     *  array), suitable for tooling. */
    std::string json() const;
};

} // namespace qsa::analyze

#endif // QSA_ANALYZE_DIAGNOSTIC_HH
