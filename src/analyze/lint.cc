/**
 * @file
 * Lint rule implementations.
 */

#include "analyze/lint.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "analyze/clifford.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace qsa::analyze
{

namespace
{

using circuit::Circuit;
using circuit::GateKind;
using circuit::Instruction;

/** Every qubit an instruction reads or writes (controls + targets). */
std::vector<unsigned>
qubitsOf(const Instruction &inst)
{
    std::vector<unsigned> all = inst.controls;
    all.insert(all.end(), inst.targets.begin(), inst.targets.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
}

/** True for kinds that apply a unitary to their qubits. */
bool
isUnitaryKind(GateKind kind)
{
    return kind != GateKind::PrepZ && kind != GateKind::Measure &&
           kind != GateKind::Breakpoint;
}

Diagnostic
makeDiag(const char *rule, Severity severity, std::size_t index,
         std::vector<unsigned> qubits, std::string label,
         std::string message, std::string hint)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    d.instruction = index;
    d.qubits = std::move(qubits);
    d.label = std::move(label);
    d.message = std::move(message);
    d.hint = std::move(hint);
    return d;
}

// --- cond-unwritten-label --------------------------------------------------

/**
 * A conditioned instruction whose label no earlier measurement
 * writes: the executor aborts the moment it reaches it, on every
 * branch, so this is a guaranteed runtime failure.
 */
void
runCondUnwrittenLabel(const Circuit &circ, std::vector<Diagnostic> &out)
{
    std::set<std::string> written;
    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        if (!inst.condLabel.empty() && !written.count(inst.condLabel)) {
            out.push_back(makeDiag(
                "cond-unwritten-label", Severity::Error, i,
                qubitsOf(inst), inst.condLabel,
                "conditioned on label '" + inst.condLabel +
                    "' which no earlier measurement writes; the "
                    "executor aborts here",
                "measure into '" + inst.condLabel +
                    "' before this instruction, or fix the label "
                    "spelling"));
        }
        if (inst.kind == GateKind::Measure)
            written.insert(inst.label);
    }
}

// --- cond-unsatisfiable ----------------------------------------------------

/**
 * A condition value no measurement of that label can produce: a
 * k-qubit measurement records values below 2^k, so the conditioned
 * instruction is dead code.
 */
void
runCondUnsatisfiable(const Circuit &circ, std::vector<Diagnostic> &out)
{
    std::map<std::string, std::size_t> width;
    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        if (!inst.condLabel.empty()) {
            const auto it = width.find(inst.condLabel);
            if (it != width.end() && it->second < 64 &&
                inst.condValue >= (std::uint64_t(1) << it->second)) {
                out.push_back(makeDiag(
                    "cond-unsatisfiable", Severity::Warning, i,
                    qubitsOf(inst), inst.condLabel,
                    "condition '" + inst.condLabel +
                        " == " + std::to_string(inst.condValue) +
                        "' can never hold: the label is only " +
                        std::to_string(it->second) + " bit(s) wide",
                    "compare against a value the measurement can "
                    "actually record"));
            }
        }
        if (inst.kind == GateKind::Measure)
            width[inst.label] = inst.targets.size();
    }
}

// --- double-measurement ----------------------------------------------------

/**
 * A qubit measured twice with nothing touching it in between: the
 * second outcome is a deterministic repeat of the first, so either
 * the gate in between was forgotten or one measurement is redundant.
 */
void
runDoubleMeasurement(const Circuit &circ, std::vector<Diagnostic> &out)
{
    struct QubitState
    {
        bool measured = false;
        bool touched_since = false;
    };
    std::vector<QubitState> state(circ.numQubits());

    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        if (inst.kind == GateKind::Measure) {
            for (unsigned q : inst.targets) {
                if (state[q].measured && !state[q].touched_since) {
                    out.push_back(makeDiag(
                        "double-measurement", Severity::Warning, i,
                        {q}, inst.label,
                        "qubit " + std::to_string(q) +
                            " is measured again with no gate in "
                            "between: the outcome is a deterministic "
                            "repeat",
                        "drop one of the measurements, or add the "
                        "missing gate between them"));
                }
                state[q].measured = true;
                state[q].touched_since = false;
            }
        } else if (inst.kind != GateKind::Breakpoint) {
            for (unsigned q : qubitsOf(inst))
                state[q].touched_since = true;
        }
    }
}

// --- measure-without-reset -------------------------------------------------

/**
 * A measured qubit used by an unconditioned gate without an
 * intervening reset: almost always a forgotten PrepZ before
 * recycling an ancilla. Conditioned gates are exempt — applying a
 * classically-controlled correction to the measured qubit itself is
 * the standard manual-reset idiom.
 */
void
runMeasureWithoutReset(const Circuit &circ, std::vector<Diagnostic> &out)
{
    std::vector<bool> measured(circ.numQubits(), false);

    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        switch (inst.kind) {
          case GateKind::Measure:
            for (unsigned q : inst.targets)
                measured[q] = true;
            break;
          case GateKind::PrepZ:
            measured[inst.targets[0]] = false;
            break;
          case GateKind::Breakpoint:
            break;
          default: {
            const bool conditioned = !inst.condLabel.empty();
            for (unsigned q : qubitsOf(inst)) {
                if (!measured[q])
                    continue;
                if (!conditioned) {
                    out.push_back(makeDiag(
                        "measure-without-reset", Severity::Warning, i,
                        {q}, "",
                        "qubit " + std::to_string(q) +
                            " was measured earlier and is reused "
                            "here without a reset",
                        "recycle the qubit through prepZ (or a "
                        "conditioned correction) before reusing it"));
                }
                // Either way the reuse is now reported/intended;
                // don't cascade over every later gate.
                measured[q] = false;
            }
          }
        }
    }
}

// --- reset-entangled -------------------------------------------------------

/**
 * PrepZ on a qubit that may still be entangled: the reset measures
 * the qubit, collapsing whatever it was entangled with — the broken-
 * mirror idiom of releasing an ancilla before uncomputing it.
 * Connectivity is tracked by union-find over multi-qubit gates
 * (measurement severs a qubit from its group); when the prefix is
 * inside the decidable Clifford fragment the exact tableau confirms
 * or suppresses the over-approximation.
 */
void
runResetEntangled(const Circuit &circ, std::vector<Diagnostic> &out)
{
    const std::size_t n = circ.numQubits();
    std::vector<std::size_t> token(n), parent;
    const auto fresh = [&](unsigned q) {
        token[q] = parent.size();
        parent.push_back(token[q]);
    };
    for (unsigned q = 0; q < n; ++q)
        fresh(q);
    const std::function<std::size_t(std::size_t)> find =
        [&](std::size_t t) -> std::size_t {
        while (parent[t] != t)
            t = parent[t] = parent[parent[t]];
        return t;
    };

    const CliffordSimulation sim(circ);

    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        if (inst.kind == GateKind::Measure) {
            // Measurement collapses the qubit out of its group; the
            // partners keep whatever correlations remain among
            // themselves.
            for (unsigned q : inst.targets)
                fresh(q);
        } else if (inst.kind == GateKind::PrepZ) {
            const unsigned q = inst.targets[0];
            std::size_t group = 0;
            for (unsigned p = 0; p < n; ++p) {
                if (find(token[p]) == find(token[q]))
                    ++group;
            }
            const bool conditioned = !inst.condLabel.empty();
            bool entangled = group > 1;
            if (entangled && sim.decidableAt(i))
                entangled = !sim.tableauAt(i).qubitIsUnentangled(q);
            if (entangled && !conditioned) {
                out.push_back(makeDiag(
                    "reset-entangled", Severity::Warning, i, {q}, "",
                    "qubit " + std::to_string(q) +
                        " is reset while possibly still entangled "
                        "with its partners: the reset measures it "
                        "and collapses them",
                    "uncompute (mirror) the entangling operations, "
                    "or measure the qubit explicitly before "
                    "releasing it"));
            }
            fresh(q);
        } else if (inst.kind != GateKind::Breakpoint) {
            const std::vector<unsigned> qs = qubitsOf(inst);
            for (std::size_t k = 1; k < qs.size(); ++k) {
                const std::size_t a = find(token[qs[0]]);
                const std::size_t b = find(token[qs[k]]);
                if (a != b)
                    parent[b] = a;
            }
        }
    }
}

// --- dead-qubit ------------------------------------------------------------

/**
 * Gates applied to qubits whose interaction component never reaches
 * a measurement: disjoint tensor factors cannot influence any
 * recorded outcome, so the work is provably unobservable. Skipped
 * entirely for measurement-free programs (assertion-style programs
 * observe the final state directly).
 */
void
runDeadQubit(const Circuit &circ, std::vector<Diagnostic> &out)
{
    const std::size_t n = circ.numQubits();
    const auto &insts = circ.instructions();

    bool any_measure = false;
    for (const Instruction &inst : insts)
        any_measure |= (inst.kind == GateKind::Measure);
    if (!any_measure)
        return;

    std::vector<std::size_t> parent(n);
    for (std::size_t q = 0; q < n; ++q)
        parent[q] = q;
    const std::function<std::size_t(std::size_t)> find =
        [&](std::size_t q) -> std::size_t {
        while (parent[q] != q)
            q = parent[q] = parent[parent[q]];
        return q;
    };

    std::vector<bool> gated(n, false), measured(n, false);
    std::vector<std::size_t> last_touch(n, 0);
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        if (inst.kind == GateKind::Breakpoint)
            continue;
        const std::vector<unsigned> qs = qubitsOf(inst);
        for (std::size_t k = 0; k < qs.size(); ++k) {
            if (k > 0)
                parent[find(qs[k])] = find(qs[0]);
            last_touch[qs[k]] = i;
            if (inst.kind == GateKind::Measure)
                measured[qs[k]] = true;
            else if (inst.kind != GateKind::PrepZ)
                gated[qs[k]] = true;
        }
    }

    std::vector<bool> live(n, false);
    for (std::size_t q = 0; q < n; ++q) {
        if (measured[q])
            live[find(q)] = true;
    }

    // One finding per dead component, anchored at its last gate.
    std::map<std::size_t, std::vector<unsigned>> dead;
    for (std::size_t q = 0; q < n; ++q) {
        if (gated[q] && !live[find(q)])
            dead[find(q)].push_back(static_cast<unsigned>(q));
    }
    for (const auto &[root, qubits] : dead) {
        (void)root;
        std::size_t anchor = 0;
        for (unsigned q : qubits)
            anchor = std::max(anchor, last_touch[q]);
        out.push_back(makeDiag(
            "dead-qubit", Severity::Warning, anchor, qubits, "",
            "gates on qubit(s) in this component can never reach a "
            "measurement: the work is unobservable",
            "measure the result, or delete the unused gates"));
    }
}

// --- adjacent-self-inverse -------------------------------------------------

/** Same operands modulo canonical order (controls as sets; Swap
 *  targets as a set; symmetric diagonal gates as one set). */
bool
sameOperands(const Instruction &a, const Instruction &b)
{
    const auto sorted = [](std::vector<unsigned> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    if (a.kind == GateKind::Z || a.kind == GateKind::Phase)
        return qubitsOf(a) == qubitsOf(b);
    if (a.kind == GateKind::Swap)
        return sorted(a.targets) == sorted(b.targets) &&
               sorted(a.controls) == sorted(b.controls);
    return a.targets == b.targets &&
           sorted(a.controls) == sorted(b.controls);
}

/** True when `b` immediately undoes `a` (same operands assumed). */
bool
isInverseKindPair(const Instruction &a, const Instruction &b)
{
    if (a.kind == b.kind) {
        switch (a.kind) {
          case GateKind::H:
          case GateKind::X:
          case GateKind::Y:
          case GateKind::Z:
          case GateKind::Swap:
            return true; // involutions (with any controls)
          case GateKind::Rx:
          case GateKind::Ry:
          case GateKind::Rz:
          case GateKind::Phase:
            return std::abs(a.angle + b.angle) <= 1e-12;
          default:
            return false;
        }
    }
    return (a.kind == GateKind::S && b.kind == GateKind::Sdg) ||
           (a.kind == GateKind::Sdg && b.kind == GateKind::S) ||
           (a.kind == GateKind::T && b.kind == GateKind::Tdg) ||
           (a.kind == GateKind::Tdg && b.kind == GateKind::T);
}

/**
 * Two *literally adjacent* instructions on the same operands that
 * cancel exactly: a no-op pair, usually a mirror-code editing
 * leftover. Strict adjacency is deliberate — cancelling pairs that
 * merely commute past unrelated gates (the iqft-then-qft seam of
 * chained Fourier arithmetic, for instance) are generator-inherent
 * and would bury real findings in noise on correct programs.
 */
void
runAdjacentSelfInverse(const Circuit &circ, std::vector<Diagnostic> &out)
{
    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i + 1 < insts.size(); ++i) {
        const Instruction &a = insts[i];
        const Instruction &b = insts[i + 1];
        if (!isUnitaryKind(a.kind) || a.kind == GateKind::Unitary ||
            !a.condLabel.empty())
            continue;
        if (!isUnitaryKind(b.kind) || b.kind == GateKind::Unitary ||
            !b.condLabel.empty())
            continue;
        const std::vector<unsigned> qs = qubitsOf(a);
        if (qs.empty())
            continue;
        if (sameOperands(a, b) && isInverseKindPair(a, b)) {
            out.push_back(makeDiag(
                "adjacent-self-inverse", Severity::Info, i, qs, "",
                "this instruction and instruction " +
                    std::to_string(i + 1) + " cancel exactly",
                "delete both instructions (or the segment was meant "
                "to wrap something that is missing)"));
        }
    }
}

} // anonymous namespace

const std::vector<LintRule> &
lintRules()
{
    static const std::vector<LintRule> rules = {
        {"cond-unwritten-label", Severity::Error,
         "conditioned instruction reads a never-written classical "
         "label (guaranteed runtime abort)",
         runCondUnwrittenLabel},
        {"cond-unsatisfiable", Severity::Warning,
         "condition value outside the measured label's range (dead "
         "code)",
         runCondUnsatisfiable},
        {"double-measurement", Severity::Warning,
         "qubit measured twice with no gate in between",
         runDoubleMeasurement},
        {"measure-without-reset", Severity::Warning,
         "measured qubit reused without a reset",
         runMeasureWithoutReset},
        {"reset-entangled", Severity::Warning,
         "qubit reset while still entangled with its partners",
         runResetEntangled},
        {"dead-qubit", Severity::Warning,
         "gates whose interaction component never reaches a "
         "measurement",
         runDeadQubit},
        {"adjacent-self-inverse", Severity::Info,
         "adjacent gates that cancel exactly (no-op segment)",
         runAdjacentSelfInverse},
    };
    return rules;
}

LintReport
lintCircuit(const circuit::Circuit &circ)
{
    QSA_OBS_COUNTER("analyze.lint.runs", 1);
    QSA_OBS_SPAN(span, "analyze.lint");
    span.arg("instructions", circ.size());

    LintReport report;
    for (const LintRule &rule : lintRules()) {
        QSA_OBS_SPAN(rule_span, "analyze.lint.rule");
        rule_span.arg("rule", rule.id);
        const std::size_t before = report.diagnostics.size();
        rule.run(circ, report.diagnostics);
        rule_span.arg("findings", report.diagnostics.size() - before);
    }

    std::stable_sort(report.diagnostics.begin(),
                     report.diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.instruction != b.instruction)
                             return a.instruction < b.instruction;
                         return a.rule < b.rule;
                     });

    QSA_OBS_COUNTER("analyze.lint.diagnostics",
                    report.diagnostics.size());
    QSA_OBS_COUNTER("analyze.lint.errors",
                    report.count(Severity::Error));
    span.arg("diagnostics", report.diagnostics.size());
    return report;
}

} // namespace qsa::analyze
