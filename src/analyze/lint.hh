/**
 * @file
 * Static circuit linter: a registry of dataflow passes over the IR.
 *
 * Each rule walks the instruction list once (classical-label
 * liveness, qubit liveness, measurement lifecycles, union-find
 * entanglement connectivity, adjacency scans) and reports structured
 * `Diagnostic`s. The rule catalogue and the soundness notes per rule
 * live in DESIGN.md "qsa::analyze"; every defect-class rule (warning
 * and error severity) is tuned to report zero findings on the repo's
 * clean reference circuits (tested), so such a finding on a real
 * program is worth reading. Info findings are advisory — correct
 * generators do emit genuinely cancelling gate pairs (the iqft;qft
 * seam of chained Fourier arithmetic).
 *
 * The entanglement rules consult the Clifford abstract interpreter
 * when the prefix up to the finding is inside the decidable fragment:
 * the exact tableau then confirms or suppresses the union-find
 * over-approximation.
 */

#ifndef QSA_ANALYZE_LINT_HH
#define QSA_ANALYZE_LINT_HH

#include <string>
#include <vector>

#include "analyze/diagnostic.hh"
#include "circuit/circuit.hh"

namespace qsa::analyze
{

/** One registered lint rule. */
struct LintRule
{
    /** Stable rule id (doubles as the Diagnostic rule field). */
    std::string id;

    /** Severity every finding of this rule carries. */
    Severity severity;

    /** One-line description for --help style listings. */
    std::string summary;

    /** The pass body: append findings for `circ` to `out`. */
    void (*run)(const circuit::Circuit &circ,
                std::vector<Diagnostic> &out);
};

/** The full rule registry, in catalogue order. */
const std::vector<LintRule> &lintRules();

/** Run every registered rule over `circ`. Findings are ordered by
 *  instruction index, then rule id. */
LintReport lintCircuit(const circuit::Circuit &circ);

} // namespace qsa::analyze

#endif // QSA_ANALYZE_LINT_HH
