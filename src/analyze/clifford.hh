/**
 * @file
 * Clifford abstract interpretation over the circuit IR.
 *
 * A stabilizer tableau (Aaronson & Gottesman's CHP representation)
 * interprets the Clifford prefix of a program exactly and statically:
 * per-boundary register marginals are uniform distributions over
 * affine subspaces, so the classical / superposition / distribution
 * predicate kinds the simulated `locate::PredicateOracle` derives by
 * ensemble-free statevector sweeps are computable without touching a
 * single amplitude. Proq's projector view (PAPERS.md) is the
 * theoretical backdrop: the stabilizer fragment of the paper's
 * predicate trichotomy is a decidable abstract domain.
 *
 * Soundness contract (tested in tests/test_analyze_clifford.cc and
 * documented in DESIGN.md):
 *  - On Clifford-only programs the derived predicates match the
 *    simulated oracle boundary-for-boundary.
 *  - The first instruction outside the decidable fragment — a
 *    non-Clifford gate, a dense Unitary, a measurement with a
 *    nondeterministic outcome, a reset of an entangled qubit, or a
 *    condition on an unknown label — degrades the analysis to Top:
 *    boundaries past it report undecidable, never a wrong predicate.
 *
 * The same machinery canonicalises Clifford segments for the
 * locator's boundary-equivalence pre-pass: `CliffordUnitary` tracks
 * conjugation images of the X_q / Z_q generators (global phase drops
 * out, which is sound because every probe statistic is
 * phase-invariant), and `equivalentPrefixBoundary` returns the
 * largest boundary up to which a suspect and a reference program are
 * provably prefix-equivalent.
 */

#ifndef QSA_ANALYZE_CLIFFORD_HH
#define QSA_ANALYZE_CLIFFORD_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hh"
#include "locate/predicates.hh"

namespace qsa::analyze
{

/**
 * CHP stabilizer tableau: n destabilizer rows, n stabilizer rows,
 * one scratch row, each row a Pauli string with a sign bit.
 */
class StabilizerTableau
{
  public:
    /** The all-|0> state on `num_qubits` qubits. */
    explicit StabilizerTableau(std::size_t num_qubits);

    std::size_t numQubits() const { return n; }

    // Elementary Clifford generators (conjugation updates).
    void h(std::size_t q);
    void s(std::size_t q);
    void sdg(std::size_t q);
    void x(std::size_t q);
    void y(std::size_t q);
    void z(std::size_t q);
    void cnot(std::size_t c, std::size_t t);
    void cz(std::size_t c, std::size_t t);
    void swap(std::size_t a, std::size_t b);

    /** True when a Z measurement of `q` has a deterministic outcome. */
    bool measureIsDeterministic(std::size_t q) const;

    /**
     * The deterministic Z-measurement outcome of `q` (fatal when the
     * outcome is random). Does not collapse: a deterministic
     * measurement never changes the state.
     */
    bool deterministicValue(std::size_t q) const;

    /**
     * Measure `q` in Z, forcing the outcome to `outcome` when it is
     * random (both branches are valid stabilizer states; the forced
     * one is kept). Returns the actual outcome — `outcome` when the
     * measurement was random, the deterministic value otherwise.
     */
    bool forceMeasure(std::size_t q, bool outcome);

    /**
     * True when qubit `q` is in a product state with the rest of the
     * system (entanglement entropy zero: the stabilizer group
     * projects onto {I, P} locally).
     */
    bool qubitIsUnentangled(std::size_t q) const;

  private:
    std::size_t n;
    std::size_t words; ///< 64-bit words per bit-plane
    /** Row-major storage: row r has x-words, then z-words, then its
     *  sign lives in `signs`. Rows 0..n-1 destabilizers, n..2n-1
     *  stabilizers, 2n scratch. */
    std::vector<std::uint64_t> xbits, zbits;
    std::vector<bool> signs;

    bool xb(std::size_t row, std::size_t col) const;
    bool zb(std::size_t row, std::size_t col) const;
    void setx(std::size_t row, std::size_t col, bool v);
    void setz(std::size_t row, std::size_t col, bool v);
    void rowcopy(std::size_t dst, std::size_t src);
    void rowclear(std::size_t row);
    /** row h *= row i with the CHP phase bookkeeping. */
    void rowsum(std::size_t h, std::size_t i);
};

/**
 * One elementary Clifford operation; `cliffordDecompose` lowers IR
 * instructions into sequences of these.
 */
struct CliffordOp
{
    enum class Kind { H, S, Sdg, X, Y, Z, Cnot, Cz, Swap };
    Kind kind;
    std::size_t a = 0; ///< target (or control for Cnot/Cz)
    std::size_t b = 0; ///< second operand for Cnot/Cz/Swap
};

/**
 * Lower an instruction to elementary Clifford operations, snapping
 * Phase/Rz/Rx/Ry angles that are exact multiples of pi/2 (within
 * 1e-9). Returns nullopt for anything outside the Clifford group —
 * T gates, generic rotations, dense unitaries, two-or-more controls,
 * Fredkin — and for the non-unitary kinds (PrepZ, Measure). The
 * classical condition is ignored here; callers decide whether the
 * instruction fires. Global phase is dropped throughout, which is
 * sound for every statistic the tool derives.
 */
std::optional<std::vector<CliffordOp>>
cliffordDecompose(const circuit::Instruction &inst);

/** Convenience: apply a decomposed op sequence to a tableau. */
void applyCliffordOps(StabilizerTableau &tab,
                      const std::vector<CliffordOp> &ops);

/**
 * Exact static interpretation of one program's Clifford prefix.
 *
 * Boundary b is the state after the first b instructions (the same
 * convention as `locate::PredicateOracle`). Boundaries 0 through
 * `decidableBoundary()` inclusive are exact; later ones are Top.
 */
class CliffordSimulation
{
  public:
    explicit CliffordSimulation(const circuit::Circuit &circ);

    /** Total number of boundaries (program size + 1). */
    std::size_t numBoundaries() const { return total; }

    /** Largest decidable boundary index. */
    std::size_t decidableBoundary() const { return decidable; }

    /** True when boundary `b` is within the decidable prefix. */
    bool decidableAt(std::size_t b) const { return b <= decidable; }

    /**
     * Why the analysis degraded to Top (empty when the whole program
     * is decidable): names the first offending instruction.
     */
    const std::string &topReason() const { return reason; }

    /**
     * The statically derived register predicate at boundary `b`
     * (fatal when `b` is past the decidable prefix). Matches
     * `PredicateOracle::at(b)` exactly on Clifford-only programs.
     */
    locate::BoundaryPredicate
    predicateAt(std::size_t b, const circuit::QubitRegister &reg) const;

    /** Deterministically recorded measurement label values within
     *  the decidable prefix. */
    const std::map<std::string, std::uint64_t> &labels() const
    {
        return recorded;
    }

    /** The exact tableau at boundary `b` (fatal past the decidable
     *  prefix). */
    const StabilizerTableau &tableauAt(std::size_t b) const;

  private:
    std::size_t total = 0;
    std::size_t decidable = 0;
    std::string reason;
    std::vector<StabilizerTableau> tableaus; ///< per decidable boundary
    std::map<std::string, std::uint64_t> recorded;
};

/**
 * Pauli-conjugation tableau of a Clifford *unitary* (not a state):
 * the images of X_q and Z_q under conjugation, signs included,
 * global phase dropped. Two Clifford circuits with equal
 * CliffordUnitary act identically on every state up to global phase.
 */
class CliffordUnitary
{
  public:
    explicit CliffordUnitary(std::size_t num_qubits);

    void apply(const CliffordOp &op);
    void apply(const std::vector<CliffordOp> &ops);

    bool operator==(const CliffordUnitary &other) const;
    bool operator!=(const CliffordUnitary &other) const
    {
        return !(*this == other);
    }

  private:
    std::size_t n;
    /** Rows 0..n-1: images of X_q; rows n..2n-1: images of Z_q. */
    std::vector<std::uint64_t> xbits, zbits;
    std::vector<bool> signs;
    std::size_t words;

    void rowop(std::size_t row, const CliffordOp &op);
};

/**
 * Largest *certified-equivalent* boundary E: the suspect and
 * reference prefixes of length E provably act identically (up to
 * global phase), so boundary E passes every probe family.
 * Certification advances by structural instruction equality (modulo
 * sorted controls and symmetric-operand order) and by equal-length
 * unconditioned Clifford runs with identical conjugation tableaux.
 * Boundaries interior to a matched run are skipped rather than
 * certified, which is sound for bracketing: the locator only uses E
 * as a passing lower bound and never probes below it. Returns 0 when
 * the programs differ immediately or have different qubit counts.
 */
std::size_t equivalentPrefixBoundary(const circuit::Circuit &suspect,
                                     const circuit::Circuit &reference);

} // namespace qsa::analyze

#endif // QSA_ANALYZE_CLIFFORD_HH
